package engine

import (
	"testing"

	"rdfviews/internal/cq"
)

// TestGoldenExplainPhysical pins the full rendered physical plans of the
// planner-depth shapes — chain-of-4, star, and repeated-variable — under both
// exact store counts and an ε-estimate Cards provider. Any change to operator
// choice, join order, permutation selection, build sides, residuals, or the
// cardinality annotations shows up as a golden diff.
func TestGoldenExplainPhysical(t *testing.T) {
	st, _ := chainStore(t, 1)
	// The ε provider answers fixed per-predicate estimates, deliberately
	// distorted from the exact counts (p0:8→10, p1:160→150, p2:160→170,
	// p3:160→140) the way the view-selection search's ε-statistics are. Note
	// it ignores repeated-variable equalities — the documented contract of
	// cost.Stats.AtomCount — while exact storeCards discounts them, so the
	// two providers order the repeated-variable query differently below.
	eps := cardsFunc(func(a cq.Atom) float64 {
		s, err := st.Dict().Decode(a[1].ConstID())
		if err != nil {
			t.Fatalf("eps provider: %v", err)
		}
		switch s.Value {
		case "p0":
			return 10
		case "p1":
			return 150
		case "p2":
			return 170
		default:
			return 140
		}
	})

	cases := []struct {
		name  string
		src   string
		exact string
		eps   string
	}{
		{
			name: "chain of 4",
			src:  chain4Src,
			// The acceptance shape: merge joins past every sort break,
			// separated by explicit Sorts, instead of cascading hash joins.
			exact: `Distinct
  Project [X1,X2]
    MergeJoin [X5]  (≈8 rows)
      Sort [X5]  (≈8 rows)
        MergeJoin [X4]  (≈8 rows)
          Sort [X4]  (≈8 rows)
            MergeJoin [X3]  (≈8 rows)
              IndexScan t(X1, #2, X3) perm=pos prefix=1 batch=1024  (≈8 rows)
              IndexScan t(X3, #14, X4) perm=pso prefix=1  (≈160 rows)
          IndexScan t(X4, #15, X5) perm=pso prefix=1  (≈160 rows)
      IndexScan t(X5, #16, X2) perm=pso prefix=1  (≈160 rows)
`,
			eps: `Distinct
  Project [X1,X2]
    MergeJoin [X5]  (≈10 rows)
      Sort [X5]  (≈10 rows)
        MergeJoin [X4]  (≈10 rows)
          Sort [X4]  (≈10 rows)
            MergeJoin [X3]  (≈10 rows)
              IndexScan t(X1, #2, X3) perm=pos prefix=1 batch=1024  (≈10 rows)
              IndexScan t(X3, #14, X4) perm=pso prefix=1  (≈150 rows)
          IndexScan t(X4, #15, X5) perm=pso prefix=1  (≈170 rows)
      IndexScan t(X5, #16, X2) perm=pso prefix=1  (≈140 rows)
`,
		},
		{
			name: "star of 3",
			src:  "q(X) :- t(X, p1, Y), t(X, p2, Z), t(X, p3, W)",
			// Every atom joins on the hub variable: one sort order carries
			// the whole pipeline, no Sort needed. The ε estimates reorder the
			// legs (p3 drives at 140) without changing the shape.
			exact: `Distinct
  Project [X1]
    MergeJoin [X1]  (≈160 rows)
      MergeJoin [X1]  (≈160 rows)
        IndexScan t(X1, #14, X2) perm=pso prefix=1 batch=1024  (≈160 rows)
        IndexScan t(X1, #15, X3) perm=pso prefix=1  (≈160 rows)
      IndexScan t(X1, #16, X4) perm=pso prefix=1  (≈160 rows)
`,
			eps: `Distinct
  Project [X1]
    MergeJoin [X1]  (≈140 rows)
      MergeJoin [X1]  (≈140 rows)
        IndexScan t(X1, #16, X4) perm=pso prefix=1 batch=1024  (≈140 rows)
        IndexScan t(X1, #14, X2) perm=pso prefix=1  (≈150 rows)
      IndexScan t(X1, #15, X3) perm=pso prefix=1  (≈170 rows)
`,
		},
		{
			name: "repeated variable",
			src:  "q(X, Y) :- t(X, p2, X), t(X, p1, Y)",
			// Exact counts discount t(X,p2,X) to its 16 reflexive triples, so
			// it drives; the ε provider counts all 170 p2-triples and puts
			// the p1 atom first instead — the regression the AtomCount fix
			// guards against, visible as a different driving scan.
			exact: `Project [X1,X2]
  MergeJoin [X1]  (≈16 rows)
    IndexScan t(X1, #15, X1) perm=pso prefix=1 batch=1024  (≈16 rows)
    IndexScan t(X1, #14, X2) perm=pso prefix=1  (≈160 rows)
`,
			eps: `Project [X1,X2]
  MergeJoin [X1]  (≈150 rows)
    IndexScan t(X1, #14, X2) perm=pso prefix=1 batch=1024  (≈150 rows)
    IndexScan t(X1, #15, X1) perm=pso prefix=1  (≈170 rows)
`,
		},
	}
	for _, c := range cases {
		q := cq.NewParser(st.Dict()).MustParseQuery(c.src)
		plan, err := PlanQuery(st, q)
		if err != nil {
			t.Fatalf("%s: exact: %v", c.name, err)
		}
		if got := plan.Explain(); got != c.exact {
			t.Errorf("%s: exact-counts plan drifted:\n--- got\n%s--- want\n%s", c.name, got, c.exact)
		}
		plan, err = PlanQueryWithStats(st, q, eps)
		if err != nil {
			t.Fatalf("%s: eps: %v", c.name, err)
		}
		if got := plan.Explain(); got != c.eps {
			t.Errorf("%s: ε-estimate plan drifted:\n--- got\n%s--- want\n%s", c.name, got, c.eps)
		}
	}
}
