package engine

// idTable is a flat open-addressing hash table from a 64-bit key hash to an
// int32 chain head, used by the distinct sets and hash joins. Callers pass
// hashes they already computed (hashRow, hashValues, hashIDs) and resolve
// collisions by value comparison, so the table can probe linearly on raw
// uint64 keys with no re-hashing — measurably faster than a Go map on the
// executor's hot path, where the map's own hashing and bucket bookkeeping
// dominated the profile.
//
// A key of 0 marks an empty slot; genuine zero hashes are remapped (harmless:
// users verify matches by value, so shared chains only cost a comparison).
type idTable struct {
	keys []uint64
	vals []int32
	mask uint64
	used int
}

func newIDTable(sizeHint int) *idTable {
	size := 16
	for size*3 < sizeHint*4 { // initial load factor ≤ 3/4
		size <<= 1
	}
	return &idTable{
		keys: make([]uint64, size),
		vals: make([]int32, size),
		mask: uint64(size - 1),
	}
}

// clone returns an independent copy of the table.
func (t *idTable) clone() *idTable {
	return &idTable{
		keys: append([]uint64(nil), t.keys...),
		vals: append([]int32(nil), t.vals...),
		mask: t.mask,
		used: t.used,
	}
}

func remapZero(h uint64) uint64 {
	if h == 0 {
		return 0x9e3779b97f4a7c15
	}
	return h
}

// get returns the value stored for the hash, or 0 when absent.
func (t *idTable) get(h uint64) int32 {
	h = remapZero(h)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case h:
			return t.vals[i]
		case 0:
			return 0
		}
	}
}

// put stores the value for the hash, inserting or overwriting.
func (t *idTable) put(h uint64, v int32) {
	h = remapZero(h)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case h:
			t.vals[i] = v
			return
		case 0:
			t.keys[i] = h
			t.vals[i] = v
			t.used++
			if t.used*4 > len(t.keys)*3 {
				t.grow()
			}
			return
		}
	}
}

// getBatch looks up a batch of hashes at once, writing each hash's stored
// value (or 0 when absent) into heads. One tight loop over table memory the
// compiler keeps free of bounds checks and call overhead — the vectorized
// joins' probe primitive, where per-row get calls dominated.
func (t *idTable) getBatch(hashes []uint64, heads []int32) {
	keys, vals, mask := t.keys, t.vals, t.mask
	for j, h := range hashes {
		h = remapZero(h)
		v := int32(0)
		for i := h & mask; ; i = (i + 1) & mask {
			k := keys[i]
			if k == h {
				v = vals[i]
				break
			}
			if k == 0 {
				break
			}
		}
		heads[j] = v
	}
}

func (t *idTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	size := len(oldKeys) * 2
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = uint64(size - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		for j := k & t.mask; ; j = (j + 1) & t.mask {
			if t.keys[j] == 0 {
				t.keys[j] = k
				t.vals[j] = oldVals[i]
				break
			}
		}
	}
}
