package engine

import (
	"fmt"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
)

// ViewResolver supplies the materialized extension of each view a plan scans.
type ViewResolver func(algebra.ViewID) (*Relation, error)

// MapResolver builds a ViewResolver from a map.
func MapResolver(m map[algebra.ViewID]*Relation) ViewResolver {
	return func(id algebra.ViewID) (*Relation, error) {
		r, ok := m[id]
		if !ok {
			return nil, fmt.Errorf("engine: no materialization for view v%d", int(id))
		}
		return r, nil
	}
}

// Execute evaluates a rewriting plan over materialized views. This is the
// query-answering path of the three-tier deployment scenario: workload
// queries run against the recommended views only, with no access to the
// triple store (Section 1).
func Execute(p algebra.Plan, resolve ViewResolver) (*Relation, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		return execScan(n, resolve)
	case *algebra.Select:
		return execSelect(n, resolve)
	case *algebra.Project:
		in, err := Execute(n.Input, resolve)
		if err != nil {
			return nil, err
		}
		return in.Project(n.Cols)
	case *algebra.Join:
		return execJoin(n, resolve)
	case *algebra.Union:
		return execUnion(n, resolve)
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

func execScan(n *algebra.Scan, resolve ViewResolver) (*Relation, error) {
	base, err := resolve(n.View)
	if err != nil {
		return nil, err
	}
	if len(n.Cols) != base.Arity() {
		return nil, fmt.Errorf("engine: scan of v%d relabels %d columns, view has %d",
			int(n.View), len(n.Cols), base.Arity())
	}
	// Share rows; only relabel columns. A scan whose relabeling repeats a
	// label (possible after fusion renamings) implies an equality filter.
	out := &Relation{Cols: n.Cols, Rows: base.Rows}
	if eq := repeatedLabelPairs(n.Cols); len(eq) > 0 {
		filtered := NewRelation(n.Cols)
		for _, row := range out.Rows {
			ok := true
			for _, pair := range eq {
				if row[pair[0]] != row[pair[1]] {
					ok = false
					break
				}
			}
			if ok {
				filtered.Rows = append(filtered.Rows, row)
			}
		}
		return filtered, nil
	}
	return out, nil
}

func repeatedLabelPairs(cols []cq.Term) [][2]int {
	var out [][2]int
	first := make(map[cq.Term]int, len(cols))
	for i, c := range cols {
		if j, ok := first[c]; ok {
			out = append(out, [2]int{j, i})
		} else {
			first[c] = i
		}
	}
	return out
}

func execSelect(n *algebra.Select, resolve ViewResolver) (*Relation, error) {
	in, err := Execute(n.Input, resolve)
	if err != nil {
		return nil, err
	}
	type test struct {
		li, ri int // column indexes; ri < 0 means constant comparison
		c      Row // single-value constant when ri < 0
	}
	tests := make([]test, 0, len(n.Conds))
	for _, c := range n.Conds {
		li := in.ColIndex(c.Left)
		if li < 0 {
			return nil, fmt.Errorf("engine: selection column %v not in %v", c.Left, in.Cols)
		}
		if c.Right.IsConst() {
			tests = append(tests, test{li: li, ri: -1, c: Row{c.Right.ConstID()}})
			continue
		}
		ri := in.ColIndex(c.Right)
		if ri < 0 {
			return nil, fmt.Errorf("engine: selection column %v not in %v", c.Right, in.Cols)
		}
		tests = append(tests, test{li: li, ri: ri})
	}
	out := NewRelation(in.Cols)
	for _, row := range in.Rows {
		ok := true
		for _, t := range tests {
			if t.ri < 0 {
				if row[t.li] != t.c[0] {
					ok = false
					break
				}
			} else if row[t.li] != row[t.ri] {
				ok = false
				break
			}
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func execJoin(n *algebra.Join, resolve ViewResolver) (*Relation, error) {
	left, err := Execute(n.Left, resolve)
	if err != nil {
		return nil, err
	}
	right, err := Execute(n.Right, resolve)
	if err != nil {
		return nil, err
	}
	// Join keys: shared labels (natural join) plus explicit conditions.
	type keyPair struct{ li, ri int }
	var keys []keyPair
	for li, c := range left.Cols {
		if !c.IsVar() {
			continue
		}
		if ri := right.ColIndex(c); ri >= 0 && left.ColIndex(c) == li {
			keys = append(keys, keyPair{li, ri})
		}
	}
	for _, c := range n.Conds {
		li := left.ColIndex(c.Left)
		ri := right.ColIndex(c.Right)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("engine: join condition %v over %v ⋈ %v", c, left.Cols, right.Cols)
		}
		keys = append(keys, keyPair{li, ri})
	}
	// Output columns: all left columns, then right columns whose labels are
	// not already exposed by the left side.
	outCols := append([]cq.Term(nil), left.Cols...)
	var rightKeep []int
	for ri, c := range right.Cols {
		if c.IsVar() && left.ColIndex(c) >= 0 {
			continue
		}
		rightKeep = append(rightKeep, ri)
		outCols = append(outCols, c)
	}
	out := NewRelation(outCols)

	// Hash join: build on the smaller input.
	buildRight := right.Len() <= left.Len()
	hash := make(map[string][]Row)
	makeKey := func(row Row, idx []int) string {
		k := make(Row, len(idx))
		for i, j := range idx {
			k[i] = row[j]
		}
		return rowKey(k)
	}
	lIdx := make([]int, len(keys))
	rIdx := make([]int, len(keys))
	for i, kp := range keys {
		lIdx[i], rIdx[i] = kp.li, kp.ri
	}
	emit := func(lrow, rrow Row) {
		nr := make(Row, 0, len(outCols))
		nr = append(nr, lrow...)
		for _, ri := range rightKeep {
			nr = append(nr, rrow[ri])
		}
		out.Rows = append(out.Rows, nr)
	}
	if buildRight {
		for _, r := range right.Rows {
			k := makeKey(r, rIdx)
			hash[k] = append(hash[k], r)
		}
		for _, l := range left.Rows {
			for _, r := range hash[makeKey(l, lIdx)] {
				emit(l, r)
			}
		}
	} else {
		for _, l := range left.Rows {
			k := makeKey(l, lIdx)
			hash[k] = append(hash[k], l)
		}
		for _, r := range right.Rows {
			for _, l := range hash[makeKey(r, rIdx)] {
				emit(l, r)
			}
		}
	}
	return out, nil
}

func execUnion(n *algebra.Union, resolve ViewResolver) (*Relation, error) {
	if len(n.Branches) == 0 {
		return nil, fmt.Errorf("engine: empty union")
	}
	var out *Relation
	seen := make(map[string]struct{})
	for _, b := range n.Branches {
		r, err := Execute(b, resolve)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = NewRelation(r.Cols)
		} else if r.Arity() != out.Arity() {
			return nil, fmt.Errorf("engine: union arity mismatch: %d vs %d", r.Arity(), out.Arity())
		}
		for _, row := range r.Rows {
			k := rowKey(row)
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}
