package engine

import (
	"fmt"
	"strings"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
)

// ViewResolver supplies the materialized extension of each view a plan scans.
type ViewResolver func(algebra.ViewID) (*Relation, error)

// MapResolver builds a ViewResolver from a map.
func MapResolver(m map[algebra.ViewID]*Relation) ViewResolver {
	return func(id algebra.ViewID) (*Relation, error) {
		r, ok := m[id]
		if !ok {
			return nil, fmt.Errorf("engine: no materialization for view v%d", int(id))
		}
		return r, nil
	}
}

// Execute evaluates a rewriting plan over materialized views. This is the
// query-answering path of the three-tier deployment scenario: workload
// queries run against the recommended views only, with no access to the
// triple store (Section 1). The logical plan is compiled to a pipeline of
// streaming relational operators — view scans, filters, hash joins,
// deduplicating projections and unions — and drained once; all structural
// validation happens at compile time.
func Execute(p algebra.Plan, resolve ViewResolver) (*Relation, error) {
	root, err := compileRel(p, resolve)
	if err != nil {
		return nil, err
	}
	out := NewRelation(root.cols())
	copyRows := !root.stableRows()
	for {
		row, ok := root.next()
		if !ok {
			break
		}
		if copyRows {
			row = append(Row(nil), row...)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// rop is a streaming relational operator over materialized views. An
// operator whose stableRows() is false reuses one output buffer across
// next() calls; consumers must copy rows they retain.
type rop interface {
	cols() []cq.Term
	next() (Row, bool)
	stableRows() bool
}

func termIndex(cols []cq.Term, t cq.Term) int {
	for i, c := range cols {
		if c == t {
			return i
		}
	}
	return -1
}

func compileRel(p algebra.Plan, resolve ViewResolver) (rop, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		base, err := resolve(n.View)
		if err != nil {
			return nil, err
		}
		if len(n.Cols) != base.Arity() {
			return nil, fmt.Errorf("engine: scan of v%d relabels %d columns, view has %d",
				int(n.View), len(n.Cols), base.Arity())
		}
		return &relScanOp{view: n.View, base: base, labels: n.Cols, eq: repeatedLabelPairs(n.Cols)}, nil
	case *algebra.Select:
		in, err := compileRel(n.Input, resolve)
		if err != nil {
			return nil, err
		}
		tests, err := compileConds(in.cols(), n.Conds)
		if err != nil {
			return nil, err
		}
		return &filterOp{in: in, tests: tests}, nil
	case *algebra.Project:
		in, err := compileRel(n.Input, resolve)
		if err != nil {
			return nil, err
		}
		return newProjectOp(in, n.Cols)
	case *algebra.Join:
		left, err := compileRel(n.Left, resolve)
		if err != nil {
			return nil, err
		}
		right, err := compileRel(n.Right, resolve)
		if err != nil {
			return nil, err
		}
		shape, err := joinShape(left.cols(), right.cols(), n.Conds)
		if err != nil {
			return nil, err
		}
		lIdx := make([]int, len(shape.keys))
		rIdx := make([]int, len(shape.keys))
		for i, k := range shape.keys {
			lIdx[i], rIdx[i] = k.li, k.ri
		}
		return &hashJoinRelOp{left: left, right: right, shape: shape, lIdx: lIdx, rIdx: rIdx}, nil
	case *algebra.Union:
		if len(n.Branches) == 0 {
			return nil, fmt.Errorf("engine: empty union")
		}
		branches := make([]rop, len(n.Branches))
		for i, b := range n.Branches {
			in, err := compileRel(b, resolve)
			if err != nil {
				return nil, err
			}
			if i > 0 && len(in.cols()) != len(branches[0].cols()) {
				return nil, fmt.Errorf("engine: union arity mismatch: %d vs %d",
					len(in.cols()), len(branches[0].cols()))
			}
			branches[i] = in
		}
		return &unionOp{branches: branches, seen: newRowSet(64)}, nil
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// relScanOp streams a materialized view's rows under the scan's relabeling. A
// relabeling that repeats a label (possible after fusion renamings) implies
// an equality filter; rows are shared with the base relation, not copied.
type relScanOp struct {
	view   algebra.ViewID
	base   *Relation
	labels []cq.Term
	eq     [][2]int
	i      int
}

func (s *relScanOp) cols() []cq.Term  { return s.labels }
func (s *relScanOp) stableRows() bool { return true }

func (s *relScanOp) next() (Row, bool) {
	for s.i < len(s.base.Rows) {
		row := s.base.Rows[s.i]
		s.i++
		ok := true
		for _, pair := range s.eq {
			if row[pair[0]] != row[pair[1]] {
				ok = false
				break
			}
		}
		if ok {
			return row, true
		}
	}
	return nil, false
}

func repeatedLabelPairs(cols []cq.Term) [][2]int {
	var out [][2]int
	first := make(map[cq.Term]int, len(cols))
	for i, c := range cols {
		if j, ok := first[c]; ok {
			out = append(out, [2]int{j, i})
		} else {
			first[c] = i
		}
	}
	return out
}

// condTest is a compiled equality condition: column li equals column ri, or
// the constant c when ri < 0.
type condTest struct {
	li, ri int
	c      dict.ID
}

func compileConds(cols []cq.Term, conds []algebra.Cond) ([]condTest, error) {
	tests := make([]condTest, 0, len(conds))
	for _, c := range conds {
		li := termIndex(cols, c.Left)
		if li < 0 {
			return nil, fmt.Errorf("engine: selection column %v not in %v", c.Left, cols)
		}
		if c.Right.IsConst() {
			tests = append(tests, condTest{li: li, ri: -1, c: c.Right.ConstID()})
			continue
		}
		ri := termIndex(cols, c.Right)
		if ri < 0 {
			return nil, fmt.Errorf("engine: selection column %v not in %v", c.Right, cols)
		}
		tests = append(tests, condTest{li: li, ri: ri})
	}
	return tests, nil
}

// filterOp applies equality conditions (σ) to its input stream.
type filterOp struct {
	in    rop
	tests []condTest
}

func (f *filterOp) cols() []cq.Term  { return f.in.cols() }
func (f *filterOp) stableRows() bool { return f.in.stableRows() }

func (f *filterOp) next() (Row, bool) {
	for {
		row, ok := f.in.next()
		if !ok {
			return nil, false
		}
		pass := true
		for _, t := range f.tests {
			if t.ri < 0 {
				if row[t.li] != t.c {
					pass = false
					break
				}
			} else if row[t.li] != row[t.ri] {
				pass = false
				break
			}
		}
		if pass {
			return row, true
		}
	}
}

// projectOp restricts/reorders columns (π) and eliminates duplicates;
// constant labels project as constant-valued columns.
type projectOp struct {
	in      rop
	labels  []cq.Term
	idx     []int // -1 for constant labels
	scratch Row
	seen    *rowSet
}

func newProjectOp(in rop, colLabels []cq.Term) (*projectOp, error) {
	inCols := in.cols()
	idx := make([]int, len(colLabels))
	for i, c := range colLabels {
		if c.IsConst() {
			idx[i] = -1
			continue
		}
		j := termIndex(inCols, c)
		if j < 0 {
			return nil, fmt.Errorf("engine: projection column %v not in %v", c, inCols)
		}
		idx[i] = j
	}
	return &projectOp{
		in:      in,
		labels:  append([]cq.Term(nil), colLabels...),
		idx:     idx,
		scratch: make(Row, len(colLabels)),
		seen:    newRowSet(64),
	}, nil
}

func (p *projectOp) cols() []cq.Term  { return p.labels }
func (p *projectOp) stableRows() bool { return true }

func (p *projectOp) next() (Row, bool) {
	for {
		row, ok := p.in.next()
		if !ok {
			return nil, false
		}
		for i, j := range p.idx {
			if j < 0 {
				p.scratch[i] = p.labels[i].ConstID()
			} else {
				p.scratch[i] = row[j]
			}
		}
		if kept, added := p.seen.addCopy(p.scratch); added {
			return kept, true
		}
	}
}

// keyPair is one join key: left column li must equal right column ri.
type keyPair struct{ li, ri int }

// joinShapeInfo is the compiled shape of a natural-plus-conditions join:
// join keys, output columns (all left columns, then the right columns whose
// labels the left side does not already expose), and the kept right indexes.
type joinShapeInfo struct {
	keys      []keyPair
	outCols   []cq.Term
	rightKeep []int
}

func joinShape(leftCols, rightCols []cq.Term, conds []algebra.Cond) (joinShapeInfo, error) {
	var sh joinShapeInfo
	// Join keys: shared labels (natural join) plus explicit conditions.
	for li, c := range leftCols {
		if !c.IsVar() {
			continue
		}
		if ri := termIndex(rightCols, c); ri >= 0 && termIndex(leftCols, c) == li {
			sh.keys = append(sh.keys, keyPair{li, ri})
		}
	}
	for _, c := range conds {
		li := termIndex(leftCols, c.Left)
		ri := termIndex(rightCols, c.Right)
		if li < 0 || ri < 0 {
			return sh, fmt.Errorf("engine: join condition %v over %v ⋈ %v", c, leftCols, rightCols)
		}
		sh.keys = append(sh.keys, keyPair{li, ri})
	}
	sh.outCols = append([]cq.Term(nil), leftCols...)
	for ri, c := range rightCols {
		if c.IsVar() && termIndex(leftCols, c) >= 0 {
			continue
		}
		sh.rightKeep = append(sh.rightKeep, ri)
		sh.outCols = append(sh.outCols, c)
	}
	return sh, nil
}

// hashJoinRelOp hash-joins two streams: the right input is drained into an
// idTable keyed by a 64-bit key hash with chained row indexes (verified by
// value), the left input streams through as the probe side — the same chain
// scheme hashJoinOp uses over the store.
type hashJoinRelOp struct {
	left, right rop
	shape       joinShapeInfo
	lIdx, rIdx  []int // key column indexes, precomputed from shape.keys

	built    bool
	table    *idTable // key hash -> chain head, as build row index + 1
	brows    []Row    // build-side rows (copied: they may share a buffer)
	chains   []int32  // collision chain, same encoding as table
	lrow     Row
	chain    int32
	emitting bool
	out      Row
}

func (j *hashJoinRelOp) cols() []cq.Term  { return j.shape.outCols }
func (j *hashJoinRelOp) stableRows() bool { return false }

func (j *hashJoinRelOp) build() {
	j.table = newIDTable(64)
	var arena rowArena
	for {
		row, ok := j.right.next()
		if !ok {
			break
		}
		h := hashValues(row, j.rIdx)
		j.brows = append(j.brows, arena.copyRow(row))
		j.chains = append(j.chains, j.table.get(h))
		j.table.put(h, int32(len(j.brows)))
	}
	j.out = make(Row, len(j.shape.outCols))
	j.built = true
}

func (j *hashJoinRelOp) next() (Row, bool) {
	if !j.built {
		j.build()
	}
	for {
		if j.emitting {
			for j.chain != 0 {
				r := j.brows[j.chain-1]
				j.chain = j.chains[j.chain-1]
				match := true
				for _, k := range j.shape.keys {
					if j.lrow[k.li] != r[k.ri] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				copy(j.out, j.lrow)
				for i, ri := range j.shape.rightKeep {
					j.out[len(j.lrow)+i] = r[ri]
				}
				return j.out, true
			}
			j.emitting = false
		}
		lrow, ok := j.left.next()
		if !ok {
			return nil, false
		}
		chain := j.table.get(hashValues(lrow, j.lIdx))
		if chain == 0 {
			continue
		}
		j.lrow = lrow
		j.chain = chain
		j.emitting = true
	}
}

// unionOp streams the set union of its branches (∪), deduplicating across
// branches; columns are aligned positionally and labeled by the first branch.
type unionOp struct {
	branches []rop
	bi       int
	seen     *rowSet
}

func (u *unionOp) cols() []cq.Term  { return u.branches[0].cols() }
func (u *unionOp) stableRows() bool { return true }

func (u *unionOp) next() (Row, bool) {
	for u.bi < len(u.branches) {
		row, ok := u.branches[u.bi].next()
		if !ok {
			u.bi++
			continue
		}
		if kept, added := u.seen.addCopy(row); added {
			return kept, true
		}
	}
	return nil, false
}

// DescribePlan compiles a rewriting plan's physical shape without touching
// view extents: the same operator choices Execute makes, with per-scan
// cardinalities supplied by card (may be nil). It is the explain surface for
// rewritings, mirroring QueryPlan.Describe for store-level queries.
func DescribePlan(p algebra.Plan, card func(algebra.ViewID) float64) (*algebra.PhysNode, error) {
	_, node, err := describeRel(p, card)
	return node, err
}

func describeRel(p algebra.Plan, card func(algebra.ViewID) float64) ([]cq.Term, *algebra.PhysNode, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		est := 0.0
		if card != nil {
			est = card(n.View)
		}
		labels := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			labels[i] = c.String()
		}
		detail := fmt.Sprintf("v%d[%s]", int(n.View), strings.Join(labels, ","))
		if eq := repeatedLabelPairs(n.Cols); len(eq) > 0 {
			detail += fmt.Sprintf(" +%d equality filters", len(eq))
		}
		return n.Cols, algebra.NewPhysNode("ViewScan", detail, est), nil
	case *algebra.Select:
		cols, child, err := describeRel(n.Input, card)
		if err != nil {
			return nil, nil, err
		}
		if _, err := compileConds(cols, n.Conds); err != nil {
			return nil, nil, err
		}
		parts := make([]string, len(n.Conds))
		for i, c := range n.Conds {
			parts[i] = c.String()
		}
		return cols, algebra.NewPhysNode("Filter", "["+strings.Join(parts, "&")+"]", 0, child), nil
	case *algebra.Project:
		cols, child, err := describeRel(n.Input, card)
		if err != nil {
			return nil, nil, err
		}
		for _, c := range n.Cols {
			if c.IsVar() && termIndex(cols, c) < 0 {
				return nil, nil, fmt.Errorf("engine: projection column %v not in %v", c, cols)
			}
		}
		labels := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			labels[i] = c.String()
		}
		return n.Cols, algebra.NewPhysNode("Project",
			"["+strings.Join(labels, ",")+"] distinct", 0, child), nil
	case *algebra.Join:
		lcols, lnode, err := describeRel(n.Left, card)
		if err != nil {
			return nil, nil, err
		}
		rcols, rnode, err := describeRel(n.Right, card)
		if err != nil {
			return nil, nil, err
		}
		sh, err := joinShape(lcols, rcols, n.Conds)
		if err != nil {
			return nil, nil, err
		}
		parts := make([]string, len(sh.keys))
		for i, k := range sh.keys {
			parts[i] = fmt.Sprintf("%s=%s", lcols[k.li], rcols[k.ri])
		}
		op, detail := "HashJoin", "["+strings.Join(parts, "&")+"] build=right"
		if len(sh.keys) == 0 {
			op, detail = "CrossProduct", ""
		}
		return sh.outCols, algebra.NewPhysNode(op, detail, 0, lnode, rnode), nil
	case *algebra.Union:
		if len(n.Branches) == 0 {
			return nil, nil, fmt.Errorf("engine: empty union")
		}
		var cols []cq.Term
		children := make([]*algebra.PhysNode, len(n.Branches))
		for i, b := range n.Branches {
			bcols, bnode, err := describeRel(b, card)
			if err != nil {
				return nil, nil, err
			}
			if i == 0 {
				cols = bcols
			} else if len(bcols) != len(cols) {
				return nil, nil, fmt.Errorf("engine: union arity mismatch: %d vs %d", len(bcols), len(cols))
			}
			children[i] = bnode
		}
		return cols, algebra.NewPhysNode("Union", "distinct", 0, children...), nil
	default:
		return nil, nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}
