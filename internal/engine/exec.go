package engine

import (
	"context"
	"fmt"
	"math"
	"strings"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cost"
	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
)

// ViewResolver supplies the materialized extension of each view a plan scans.
type ViewResolver func(algebra.ViewID) (*Relation, error)

// MapResolver builds a ViewResolver from a map.
func MapResolver(m map[algebra.ViewID]*Relation) ViewResolver {
	return func(id algebra.ViewID) (*Relation, error) {
		r, ok := m[id]
		if !ok {
			return nil, fmt.Errorf("engine: no materialization for view v%d", int(id))
		}
		return r, nil
	}
}

// VecMode selects the execution protocol. The zero value is vectorized
// batch-at-a-time execution — the default everywhere — so that zero-valued
// ExecOptions pick up the fast path; VecOff selects the historical
// row-at-a-time operators, retained as the differential oracle for the
// vectorized implementation (the way inl.go pins the planner).
type VecMode int

const (
	// VecOn runs the batch-at-a-time operators (vec.go / vec_exec.go).
	VecOn VecMode = iota
	// VecOff runs the row-at-a-time oracle (operators.go / exec.go rel ops).
	VecOff
)

// ExecOptions tunes execution of both engines: the rewriting executor
// (Execute) and the store-side pipeline (QueryPlan.EvalWithOptions). The zero
// value is serial vectorized execution, the default everywhere.
type ExecOptions struct {
	// DOP is the degree of parallelism parallel-eligible rewriting operators
	// run at: a hash join partitions its build extent into DOP key-hash
	// partitions built concurrently and fans its probe stream out over DOP
	// worker goroutines; a union evaluates up to DOP branches concurrently.
	// 0 or 1 keeps every operator serial.
	DOP int

	// Vectorized selects the operator protocol: the zero value (VecOn) pulls
	// column batches, VecOff the row-at-a-time oracle.
	Vectorized VecMode

	// Ctx, when non-nil, cancels the execution: operators poll its Done
	// channel at per-batch checkpoints and stop scanning, and the drain
	// surfaces ctx.Err(). nil (the zero value) executes to completion.
	Ctx context.Context

	// intr is the per-execution cancellation token derived from Ctx by the
	// entry points (cancel.go); compile recursions thread it by value.
	intr *interrupt
}

// parallelRewriteMinRows is the estimated operator input size below which
// fanning rewriting execution out over goroutines is not worth the channel
// and copy overhead. Variable so tests can force the parallel operators on
// small fixtures.
var parallelRewriteMinRows = 1024.0

// enableRewriteBuildSide gates the cost-chosen hash-join build side; false
// reproduces the historical always-build-right executor, kept as the
// benchmark baseline (BenchmarkRewriteExecBuildSide).
var enableRewriteBuildSide = true

// Execute evaluates a rewriting plan over materialized views. This is the
// query-answering path of the three-tier deployment scenario: workload
// queries run against the recommended views only, with no access to the
// triple store (Section 1). The logical plan is compiled to a pipeline of
// streaming relational operators — view scans, filters, hash joins,
// deduplicating projections and unions — and drained once; all structural
// validation happens at compile time.
func Execute(p algebra.Plan, resolve ViewResolver) (*Relation, error) {
	return ExecuteWithOptions(p, resolve, ExecOptions{})
}

// ExecuteWithOptions is Execute with explicit execution options; the zero
// value reproduces Execute exactly. Execution is vectorized (vec_exec.go)
// unless Vectorized is VecOff, which selects the row-at-a-time operators
// below — the differential oracle. With DOP > 1 large hash joins run with
// partitioned parallel builds and fanned-out probe streams, and union
// branches evaluate concurrently (see ExecOptions.DOP); answers are
// identical across all modes.
func ExecuteWithOptions(p algebra.Plan, resolve ViewResolver, opts ExecOptions) (*Relation, error) {
	opts.intr = newInterrupt(opts.Ctx)
	if opts.Vectorized != VecOff {
		return executeVec(p, resolve, opts)
	}
	root, _, err := compileRel(p, resolve, opts)
	if err != nil {
		return nil, err
	}
	defer closeRel(root) // release parallel workers on every exit path
	out := NewRelation(root.cols())
	copyRows := !root.stableRows()
	for {
		if opts.intr.stop() {
			return nil, opts.ctxErr()
		}
		row, ok := root.next()
		if !ok {
			break
		}
		if copyRows {
			row = append(Row(nil), row...)
		}
		out.Rows = append(out.Rows, row)
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	return out, nil
}

// rop is a streaming relational operator over materialized views. An
// operator whose stableRows() is false reuses one output buffer across
// next() calls; consumers must copy rows they retain. Operators tolerate
// next() calls after exhaustion (they keep reporting EOF), and operators
// owning goroutines implement close() (see closeRel).
type rop interface {
	cols() []cq.Term
	next() (Row, bool)
	stableRows() bool
}

func termIndex(cols []cq.Term, t cq.Term) int {
	for i, c := range cols {
		if c == t {
			return i
		}
	}
	return -1
}

// condsEst discounts an input estimate for equality conditions. With no
// per-column statistics on the extent surface each condition is charged a
// flat 1/2 selectivity — crude, but enough to order build sides and size
// dedup sets, and never read as exact.
func condsEst(est float64, conds int) float64 {
	for i := 0; i < conds && est > 1; i++ {
		est /= 2
	}
	return est
}

// scanEst estimates a view scan's output: the extent cardinality, discounted
// to its square root per repeated-label equality filter (the same
// √n-distinct reading storeCards applies to repeated-variable atoms).
func scanEst(rows float64, eqPairs int) float64 {
	for i := 0; i < eqPairs; i++ {
		rows = math.Sqrt(rows)
	}
	return rows
}

// compileRel compiles a plan node to its streaming operator and the node's
// estimated output cardinality. Leaf estimates are exact (the resolved
// extents' row counts); inner estimates use the same containment-style
// arithmetic the store planner uses. The estimates drive the hash joins'
// cost-chosen build sides, the dedup size hints and the parallel-operator
// thresholds.
func compileRel(p algebra.Plan, resolve ViewResolver, opts ExecOptions) (rop, float64, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		base, err := resolve(n.View)
		if err != nil {
			return nil, 0, err
		}
		if len(n.Cols) != base.Arity() {
			return nil, 0, fmt.Errorf("engine: scan of v%d relabels %d columns, view has %d",
				int(n.View), len(n.Cols), base.Arity())
		}
		eq := repeatedLabelPairs(n.Cols)
		op := &relScanOp{view: n.View, rows: base.Rows, labels: n.Cols, eq: eq}
		return op, scanEst(float64(len(base.Rows)), len(eq)), nil
	case *algebra.Select:
		in, est, err := compileRel(n.Input, resolve, opts)
		if err != nil {
			return nil, 0, err
		}
		tests, err := compileConds(in.cols(), n.Conds)
		if err != nil {
			return nil, 0, err
		}
		return &filterOp{in: in, tests: tests}, condsEst(est, len(n.Conds)), nil
	case *algebra.Project:
		in, est, err := compileRel(n.Input, resolve, opts)
		if err != nil {
			return nil, 0, err
		}
		// A filter over a large splittable extent feeds the deduplicating
		// projection through an exchange: the predicate work fans out over
		// DOP workers while the dedup stays at the (serial) consumer.
		if opts.DOP > 1 && est >= parallelRewriteMinRows {
			if f, ok := in.(*filterOp); ok {
				if parts := splitRel(f, opts.DOP); parts != nil {
					in = newRelExchange(f.cols(), parts, opts.DOP)
				}
			}
		}
		op, err := newProjectOp(in, n.Cols, distinctSizeHint(est))
		if err != nil {
			return nil, 0, err
		}
		return op, est, nil
	case *algebra.Join:
		left, lest, err := compileRel(n.Left, resolve, opts)
		if err != nil {
			return nil, 0, err
		}
		right, rest, err := compileRel(n.Right, resolve, opts)
		if err != nil {
			return nil, 0, err
		}
		shape, err := joinShape(left.cols(), right.cols(), n.Conds)
		if err != nil {
			return nil, 0, err
		}
		lIdx := make([]int, len(shape.keys))
		rIdx := make([]int, len(shape.keys))
		for i, k := range shape.keys {
			lIdx[i], rIdx[i] = k.li, k.ri
		}
		buildLeft := enableRewriteBuildSide && cost.HashJoinBuildLeft(lest, rest)
		est := joinOutEst(lest, rest, len(shape.keys))
		if opts.DOP > 1 && lest+rest >= parallelRewriteMinRows {
			return newParallelHashJoin(left, right, shape, lIdx, rIdx, buildLeft, opts.DOP), est, nil
		}
		return &hashJoinRelOp{left: left, right: right, shape: shape, lIdx: lIdx, rIdx: rIdx,
			buildLeft: buildLeft, leftWidth: len(left.cols())}, est, nil
	case *algebra.Union:
		if len(n.Branches) == 0 {
			return nil, 0, fmt.Errorf("engine: empty union")
		}
		branches := make([]rop, len(n.Branches))
		sum := 0.0
		for i, b := range n.Branches {
			in, est, err := compileRel(b, resolve, opts)
			if err != nil {
				return nil, 0, err
			}
			if i > 0 && len(in.cols()) != len(branches[0].cols()) {
				return nil, 0, fmt.Errorf("engine: union arity mismatch: %d vs %d",
					len(in.cols()), len(branches[0].cols()))
			}
			branches[i] = in
			sum += est
		}
		hint := distinctSizeHint(sum)
		if opts.DOP > 1 && len(branches) > 1 && sum >= parallelRewriteMinRows {
			return newParallelUnion(branches, hint, opts.DOP), sum, nil
		}
		return &unionOp{branches: branches, seen: newRowSet(hint)}, sum, nil
	default:
		return nil, 0, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// relScanOp streams a materialized view's rows under the scan's relabeling. A
// relabeling that repeats a label (possible after fusion renamings) implies
// an equality filter; rows are shared with the base relation, not copied.
// The row slice is immutable for the operator's lifetime, so a scan splits
// into independent range sub-scans for parallel draining (see splitRel).
type relScanOp struct {
	view   algebra.ViewID
	rows   []Row
	labels []cq.Term
	eq     [][2]int
	i      int
}

func (s *relScanOp) cols() []cq.Term  { return s.labels }
func (s *relScanOp) stableRows() bool { return true }

func (s *relScanOp) next() (Row, bool) {
	for s.i < len(s.rows) {
		row := s.rows[s.i]
		s.i++
		ok := true
		for _, pair := range s.eq {
			if row[pair[0]] != row[pair[1]] {
				ok = false
				break
			}
		}
		if ok {
			return row, true
		}
	}
	return nil, false
}

// split partitions the remaining rows into contiguous ranges, one sub-scan
// per part, for parallel draining.
func (s *relScanOp) split(parts int) []rop {
	rows := s.rows[s.i:]
	if parts > len(rows) {
		parts = len(rows)
	}
	if parts <= 1 {
		return nil
	}
	out := make([]rop, parts)
	for p := 0; p < parts; p++ {
		lo, hi := p*len(rows)/parts, (p+1)*len(rows)/parts
		out[p] = &relScanOp{view: s.view, rows: rows[lo:hi], labels: s.labels, eq: s.eq}
	}
	return out
}

func repeatedLabelPairs(cols []cq.Term) [][2]int {
	var out [][2]int
	first := make(map[cq.Term]int, len(cols))
	for i, c := range cols {
		if j, ok := first[c]; ok {
			out = append(out, [2]int{j, i})
		} else {
			first[c] = i
		}
	}
	return out
}

// condTest is a compiled equality condition: column li equals column ri, or
// the constant c when ri < 0.
type condTest struct {
	li, ri int
	c      dict.ID
}

func compileConds(cols []cq.Term, conds []algebra.Cond) ([]condTest, error) {
	tests := make([]condTest, 0, len(conds))
	for _, c := range conds {
		li := termIndex(cols, c.Left)
		if li < 0 {
			return nil, fmt.Errorf("engine: selection column %v not in %v", c.Left, cols)
		}
		if c.Right.IsConst() {
			tests = append(tests, condTest{li: li, ri: -1, c: c.Right.ConstID()})
			continue
		}
		ri := termIndex(cols, c.Right)
		if ri < 0 {
			return nil, fmt.Errorf("engine: selection column %v not in %v", c.Right, cols)
		}
		tests = append(tests, condTest{li: li, ri: ri})
	}
	return tests, nil
}

// filterOp applies equality conditions (σ) to its input stream.
type filterOp struct {
	in    rop
	tests []condTest
}

func (f *filterOp) cols() []cq.Term  { return f.in.cols() }
func (f *filterOp) stableRows() bool { return f.in.stableRows() }
func (f *filterOp) close()           { closeRel(f.in) }

func (f *filterOp) next() (Row, bool) {
	for {
		row, ok := f.in.next()
		if !ok {
			return nil, false
		}
		pass := true
		for _, t := range f.tests {
			if t.ri < 0 {
				if row[t.li] != t.c {
					pass = false
					break
				}
			} else if row[t.li] != row[t.ri] {
				pass = false
				break
			}
		}
		if pass {
			return row, true
		}
	}
}

// split distributes the filter over its input's split streams (the compiled
// tests are read-only and shared), so a filtered view-extent scan fans out.
func (f *filterOp) split(parts int) []rop {
	ins := splitRel(f.in, parts)
	if ins == nil {
		return nil
	}
	out := make([]rop, len(ins))
	for i, in := range ins {
		out[i] = &filterOp{in: in, tests: f.tests}
	}
	return out
}

// projectOp restricts/reorders columns (π) and eliminates duplicates;
// constant labels project as constant-valued columns.
type projectOp struct {
	in      rop
	labels  []cq.Term
	idx     []int // -1 for constant labels
	scratch Row
	seen    *rowSet
}

func newProjectOp(in rop, colLabels []cq.Term, sizeHint int) (*projectOp, error) {
	inCols := in.cols()
	idx := make([]int, len(colLabels))
	for i, c := range colLabels {
		if c.IsConst() {
			idx[i] = -1
			continue
		}
		j := termIndex(inCols, c)
		if j < 0 {
			return nil, fmt.Errorf("engine: projection column %v not in %v", c, inCols)
		}
		idx[i] = j
	}
	return &projectOp{
		in:      in,
		labels:  append([]cq.Term(nil), colLabels...),
		idx:     idx,
		scratch: make(Row, len(colLabels)),
		seen:    newRowSet(sizeHint),
	}, nil
}

func (p *projectOp) cols() []cq.Term  { return p.labels }
func (p *projectOp) stableRows() bool { return true }
func (p *projectOp) close()           { closeRel(p.in) }

func (p *projectOp) next() (Row, bool) {
	for {
		row, ok := p.in.next()
		if !ok {
			return nil, false
		}
		for i, j := range p.idx {
			if j < 0 {
				p.scratch[i] = p.labels[i].ConstID()
			} else {
				p.scratch[i] = row[j]
			}
		}
		if kept, added := p.seen.addCopy(p.scratch); added {
			return kept, true
		}
	}
}

// keyPair is one join key: left column li must equal right column ri.
type keyPair struct{ li, ri int }

// joinShapeInfo is the compiled shape of a natural-plus-conditions join:
// join keys, output columns (all left columns, then the right columns whose
// labels the left side does not already expose), and the kept right indexes.
type joinShapeInfo struct {
	keys      []keyPair
	outCols   []cq.Term
	rightKeep []int
}

// matchKeys checks the join keys between a probe row and a build row; with
// buildLeft the probe row comes from the right input, otherwise from the
// left. Shared by the serial and partitioned parallel hash joins.
func (sh *joinShapeInfo) matchKeys(prow, brow Row, buildLeft bool) bool {
	for _, k := range sh.keys {
		if buildLeft {
			if prow[k.ri] != brow[k.li] {
				return false
			}
		} else if prow[k.li] != brow[k.ri] {
			return false
		}
	}
	return true
}

// assemble fills dst with the join's output row — left values, then the
// kept right values — from the current probe and build rows.
func (sh *joinShapeInfo) assemble(dst, prow, brow Row, buildLeft bool, leftWidth int) {
	l, r := prow, brow
	if buildLeft {
		l, r = brow, prow
	}
	copy(dst, l)
	for i, ri := range sh.rightKeep {
		dst[leftWidth+i] = r[ri]
	}
}

func joinShape(leftCols, rightCols []cq.Term, conds []algebra.Cond) (joinShapeInfo, error) {
	var sh joinShapeInfo
	// Join keys: shared labels (natural join) plus explicit conditions.
	for li, c := range leftCols {
		if !c.IsVar() {
			continue
		}
		if ri := termIndex(rightCols, c); ri >= 0 && termIndex(leftCols, c) == li {
			sh.keys = append(sh.keys, keyPair{li, ri})
		}
	}
	for _, c := range conds {
		li := termIndex(leftCols, c.Left)
		ri := termIndex(rightCols, c.Right)
		if li < 0 || ri < 0 {
			return sh, fmt.Errorf("engine: join condition %v over %v ⋈ %v", c, leftCols, rightCols)
		}
		sh.keys = append(sh.keys, keyPair{li, ri})
	}
	sh.outCols = append([]cq.Term(nil), leftCols...)
	for ri, c := range rightCols {
		if c.IsVar() && termIndex(leftCols, c) >= 0 {
			continue
		}
		sh.rightKeep = append(sh.rightKeep, ri)
		sh.outCols = append(sh.outCols, c)
	}
	return sh, nil
}

// hashJoinRelOp hash-joins two streams. The build side — chosen by
// cost.HashJoinBuildLeft over the sides' estimated cardinalities, right by
// default — is drained into an idTable keyed by a 64-bit key hash with
// chained row indexes (verified by value), and the other side streams
// through as the probe. Before paying for the build, one probe row is peeked:
// an empty probe side makes the join empty regardless of the build extent,
// so the build is skipped entirely. Output columns are always the left
// columns followed by the kept right columns, whichever side builds.
type hashJoinRelOp struct {
	left, right rop
	shape       joinShapeInfo
	lIdx, rIdx  []int // key column indexes, precomputed from shape.keys
	buildLeft   bool  // cost-chosen build side
	leftWidth   int   // arity of the left input, for output assembly

	built    bool
	eof      bool
	table    *idTable // key hash -> chain head, as build row index + 1
	brows    []Row    // build-side rows (copied: they may share a buffer)
	chains   []int32  // collision chain, same encoding as table
	peeked   Row      // pre-build peeked probe row, replayed first
	havePeek bool
	prow     Row // current probe row
	chain    int32
	emitting bool
	out      Row
}

func (j *hashJoinRelOp) cols() []cq.Term  { return j.shape.outCols }
func (j *hashJoinRelOp) stableRows() bool { return false }

func (j *hashJoinRelOp) close() {
	closeRel(j.left)
	closeRel(j.right)
}

// buildSide/probeSide orient the operator around its chosen build side.
func (j *hashJoinRelOp) buildSide() (rop, []int) {
	if j.buildLeft {
		return j.left, j.lIdx
	}
	return j.right, j.rIdx
}

func (j *hashJoinRelOp) probeSide() (rop, []int) {
	if j.buildLeft {
		return j.right, j.rIdx
	}
	return j.left, j.lIdx
}

func (j *hashJoinRelOp) build() {
	j.table = newIDTable(64)
	var arena rowArena
	in, idx := j.buildSide()
	for {
		row, ok := in.next()
		if !ok {
			break
		}
		h := hashValues(row, idx)
		j.brows = append(j.brows, arena.copyRow(row))
		j.chains = append(j.chains, j.table.get(h))
		j.table.put(h, int32(len(j.brows)))
	}
	j.out = make(Row, len(j.shape.outCols))
	j.built = true
}

func (j *hashJoinRelOp) next() (Row, bool) {
	if j.eof {
		return nil, false
	}
	if !j.built {
		// Peek one probe row before building: a zero-row probe extent makes
		// the join empty, so the (possibly huge) build side is never drained.
		probe, _ := j.probeSide()
		row, ok := probe.next()
		if !ok {
			j.eof = true
			return nil, false
		}
		j.peeked, j.havePeek = row, true
		j.build()
	}
	probe, pIdx := j.probeSide()
	for {
		if j.emitting {
			for j.chain != 0 {
				r := j.brows[j.chain-1]
				j.chain = j.chains[j.chain-1]
				if !j.shape.matchKeys(j.prow, r, j.buildLeft) {
					continue
				}
				j.shape.assemble(j.out, j.prow, r, j.buildLeft, j.leftWidth)
				return j.out, true
			}
			j.emitting = false
		}
		var prow Row
		var ok bool
		if j.havePeek {
			prow, ok, j.havePeek = j.peeked, true, false
		} else {
			prow, ok = probe.next()
		}
		if !ok {
			j.eof = true
			return nil, false
		}
		chain := j.table.get(hashValues(prow, pIdx))
		if chain == 0 {
			continue
		}
		j.prow = prow
		j.chain = chain
		j.emitting = true
	}
}

// unionOp streams the set union of its branches (∪), deduplicating across
// branches; columns are aligned positionally and labeled by the first branch.
// The dedup set is pre-sized from the branches' resolved cardinalities
// (clamped by distinctSizeHint) instead of the historical fixed 64 slots.
type unionOp struct {
	branches []rop
	bi       int
	seen     *rowSet
}

func (u *unionOp) cols() []cq.Term  { return u.branches[0].cols() }
func (u *unionOp) stableRows() bool { return true }

func (u *unionOp) close() {
	for _, b := range u.branches {
		closeRel(b)
	}
}

func (u *unionOp) next() (Row, bool) {
	for u.bi < len(u.branches) {
		row, ok := u.branches[u.bi].next()
		if !ok {
			u.bi++
			continue
		}
		if kept, added := u.seen.addCopy(row); added {
			return kept, true
		}
	}
	return nil, false
}

// DescribePlan compiles a rewriting plan's physical shape without touching
// view extents: the same operator choices Execute makes, with per-scan
// cardinalities supplied by card (may be nil). It is the explain surface for
// rewritings, mirroring QueryPlan.Describe for store-level queries.
func DescribePlan(p algebra.Plan, card func(algebra.ViewID) float64) (*algebra.PhysNode, error) {
	return DescribePlanWithOptions(p, card, ExecOptions{})
}

// DescribePlanWithOptions is DescribePlan under explicit execution options:
// with DOP > 1 the hash joins and unions that would run partitioned/parallel
// are annotated with their degree of parallelism, mirroring
// ExecuteWithOptions' thresholds on the supplied estimates.
func DescribePlanWithOptions(p algebra.Plan, card func(algebra.ViewID) float64, opts ExecOptions) (*algebra.PhysNode, error) {
	_, node, _, err := describeRel(p, card, opts)
	return node, err
}

// selectChainOverScan reports whether the plan is a chain of selections
// bottoming out at a view scan — the shape that compiles to a splittable
// filterOp, which compileRel wraps in a parallel exchange under an eligible
// projection.
func selectChainOverScan(p algebra.Plan) bool {
	s, ok := p.(*algebra.Select)
	if !ok {
		return false
	}
	for {
		switch in := s.Input.(type) {
		case *algebra.Select:
			s = in
		case *algebra.Scan:
			return true
		default:
			return false
		}
	}
}

// describeRel mirrors compileRel symbolically: same shapes, same estimate
// arithmetic, same build-side and parallelism choices, but leaf cardinalities
// come from card instead of resolved extents. Every node carries its
// estimated output cardinality; hash joins carry their chosen build side.
func describeRel(p algebra.Plan, card func(algebra.ViewID) float64, opts ExecOptions) ([]cq.Term, *algebra.PhysNode, float64, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		est := 0.0
		if card != nil {
			est = card(n.View)
		}
		labels := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			labels[i] = c.String()
		}
		detail := fmt.Sprintf("v%d[%s]", int(n.View), strings.Join(labels, ","))
		eq := repeatedLabelPairs(n.Cols)
		if len(eq) > 0 {
			detail += fmt.Sprintf(" +%d equality filters", len(eq))
			est = scanEst(est, len(eq))
		}
		node := algebra.NewPhysNode("ViewScan", detail, est)
		if opts.Vectorized != VecOff {
			node.Batch = BatchSize
		}
		return n.Cols, node, est, nil
	case *algebra.Select:
		cols, child, est, err := describeRel(n.Input, card, opts)
		if err != nil {
			return nil, nil, 0, err
		}
		if _, err := compileConds(cols, n.Conds); err != nil {
			return nil, nil, 0, err
		}
		parts := make([]string, len(n.Conds))
		for i, c := range n.Conds {
			parts[i] = c.String()
		}
		est = condsEst(est, len(n.Conds))
		return cols, algebra.NewPhysNode("Filter", "["+strings.Join(parts, "&")+"]", est, child), est, nil
	case *algebra.Project:
		cols, child, est, err := describeRel(n.Input, card, opts)
		if err != nil {
			return nil, nil, 0, err
		}
		for _, c := range n.Cols {
			if c.IsVar() && termIndex(cols, c) < 0 {
				return nil, nil, 0, fmt.Errorf("engine: projection column %v not in %v", c, cols)
			}
		}
		labels := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			labels[i] = c.String()
		}
		// Mirror compileRel's exchange under a deduplicating projection: a
		// large filter over a splittable extent scan fans out over DOP
		// workers, so its Filter node carries the dop annotation.
		if opts.DOP > 1 && est >= parallelRewriteMinRows && selectChainOverScan(n.Input) {
			child.DOP = opts.DOP
			if opts.Vectorized != VecOff {
				child.Batch = BatchSize
			}
		}
		return n.Cols, algebra.NewPhysNode("Project",
			"["+strings.Join(labels, ",")+"] distinct", est, child), est, nil
	case *algebra.Join:
		lcols, lnode, lest, err := describeRel(n.Left, card, opts)
		if err != nil {
			return nil, nil, 0, err
		}
		rcols, rnode, rest, err := describeRel(n.Right, card, opts)
		if err != nil {
			return nil, nil, 0, err
		}
		sh, err := joinShape(lcols, rcols, n.Conds)
		if err != nil {
			return nil, nil, 0, err
		}
		parts := make([]string, len(sh.keys))
		for i, k := range sh.keys {
			parts[i] = fmt.Sprintf("%s=%s", lcols[k.li], rcols[k.ri])
		}
		est := joinOutEst(lest, rest, len(sh.keys))
		op, detail := "HashJoin", "["+strings.Join(parts, "&")+"]"
		if len(sh.keys) == 0 {
			op, detail = "CrossProduct", ""
		}
		node := algebra.NewPhysNode(op, detail, est, lnode, rnode)
		if op == "HashJoin" {
			node.Build = "right"
			if enableRewriteBuildSide && cost.HashJoinBuildLeft(lest, rest) {
				node.Build = "left"
			}
		}
		if opts.DOP > 1 && lest+rest >= parallelRewriteMinRows {
			node.DOP = opts.DOP
			if opts.Vectorized != VecOff {
				node.Batch = BatchSize
			}
		}
		return sh.outCols, node, est, nil
	case *algebra.Union:
		if len(n.Branches) == 0 {
			return nil, nil, 0, fmt.Errorf("engine: empty union")
		}
		var cols []cq.Term
		sum := 0.0
		children := make([]*algebra.PhysNode, len(n.Branches))
		for i, b := range n.Branches {
			bcols, bnode, best, err := describeRel(b, card, opts)
			if err != nil {
				return nil, nil, 0, err
			}
			if i == 0 {
				cols = bcols
			} else if len(bcols) != len(cols) {
				return nil, nil, 0, fmt.Errorf("engine: union arity mismatch: %d vs %d", len(bcols), len(cols))
			}
			children[i] = bnode
			sum += best
		}
		node := algebra.NewPhysNode("Union", "distinct", sum, children...)
		if opts.DOP > 1 && len(n.Branches) > 1 && sum >= parallelRewriteMinRows {
			node.DOP = min(opts.DOP, len(n.Branches))
			if opts.Vectorized != VecOff {
				node.Batch = BatchSize
			}
		}
		return cols, node, sum, nil
	default:
		return nil, nil, 0, fmt.Errorf("engine: unknown plan node %T", p)
	}
}
