package engine

import (
	"fmt"
	"testing"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
	"rdfviews/internal/datagen"
)

// rewriteBenchFixture materializes atomic predicate views from the standard
// 20k-triple dataset in a 4-shard store — the deployment shape of the
// answering tier: workload queries run against view extents only. It returns
// the extents plus the two benchmark plans: a 4-branch union of hash joins
// (one branch per predicate view, all joining the shared second-hop view on
// Y) and the branch join reused by the build-side benchmark.
func rewriteBenchFixture(b *testing.B) (map[algebra.ViewID]*Relation, *algebra.Union) {
	b.Helper()
	st, p := benchShardedData(b, 4)
	views := make(map[algebra.ViewID]*Relation)
	x, y, z := cq.Var(1), cq.Var(2), cq.Var(3)
	for i := 0; i < 4; i++ {
		q := p.MustParseQuery(fmt.Sprintf("q(X, Y) :- t(X, %s, Y)", datagen.PropName(i)))
		p.ResetNames()
		rel, err := Materialize(st, q)
		if err != nil {
			b.Fatal(err)
		}
		rel.Cols = []cq.Term{x, y}
		views[algebra.ViewID(i+1)] = rel
	}
	shared := p.MustParseQuery(fmt.Sprintf("q(Y, Z) :- t(Y, %s, Z)", datagen.PropName(4)))
	p.ResetNames()
	rel, err := Materialize(st, shared)
	if err != nil {
		b.Fatal(err)
	}
	rel.Cols = []cq.Term{y, z}
	views[9] = rel

	branches := make([]algebra.Plan, 4)
	for i := range branches {
		branches[i] = algebra.NewJoin(
			algebra.NewScan(algebra.ViewID(i+1), []cq.Term{x, y}),
			algebra.NewScan(9, []cq.Term{y, z}),
		)
	}
	return views, algebra.NewUnion(branches...)
}

// BenchmarkRewriteExecSerial is the serial baseline for the multi-branch
// union rewriting: four hash-join branches evaluated one after another with
// one consumer-side dedup set.
func BenchmarkRewriteExecSerial(b *testing.B) {
	views, union := rewriteBenchFixture(b)
	resolve := MapResolver(views)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(union, resolve); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewriteExecParallel runs the same union rewriting with the
// parallel executor at increasing DOP: union branches evaluate concurrently
// and each branch's hash join runs with a partitioned parallel build and
// fanned-out probe streams. Row sets are verified identical to serial before
// timing; wall-clock scaling is bounded by GOMAXPROCS.
func BenchmarkRewriteExecParallel(b *testing.B) {
	views, union := rewriteBenchFixture(b)
	resolve := MapResolver(views)
	serial, err := Execute(union, resolve)
	if err != nil {
		b.Fatal(err)
	}
	for _, dop := range []int{2, 4, 8} {
		opts := ExecOptions{DOP: dop}
		par, err := ExecuteWithOptions(union, resolve, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !par.EqualAsSet(serial) || par.Len() != serial.Len() {
			b.Fatalf("dop=%d disagrees with serial: %d vs %d rows", dop, par.Len(), serial.Len())
		}
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteWithOptions(union, resolve, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRewriteExecBuildSide measures the cost-chosen build side on a
// join whose left input is a small slice of an extent and whose right input
// is a full extent ~20× larger: the historical executor always built the
// large right side, the cost-chosen executor builds the small left side and
// streams the large extent through as the probe.
func BenchmarkRewriteExecBuildSide(b *testing.B) {
	views, _ := rewriteBenchFixture(b)
	x, y := cq.Var(1), cq.Var(2)
	big := views[9]
	small := &Relation{Cols: []cq.Term{x, y}, Rows: views[1].Rows[:minInt(100, views[1].Len())]}
	sviews := map[algebra.ViewID]*Relation{1: small, 2: big}
	resolve := MapResolver(sviews)
	plan := algebra.NewJoin(
		algebra.NewScan(1, []cq.Term{x, y}),
		algebra.NewScan(2, []cq.Term{y, cq.Var(3)}),
	)
	baselineGate := func(on bool) { enableRewriteBuildSide = on }
	chosen, err := Execute(plan, resolve)
	if err != nil {
		b.Fatal(err)
	}
	baselineGate(false)
	baseline, err := Execute(plan, resolve)
	baselineGate(true)
	if err != nil {
		b.Fatal(err)
	}
	if !chosen.EqualAsSet(baseline) || chosen.Len() != baseline.Len() {
		b.Fatalf("build sides disagree: %d vs %d rows", chosen.Len(), baseline.Len())
	}
	b.Run("build-right-forced", func(b *testing.B) {
		baselineGate(false)
		defer baselineGate(true)
		for i := 0; i < b.N; i++ {
			if _, err := Execute(plan, resolve); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cost-chosen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Execute(plan, resolve); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
