package engine

import (
	"sync"

	"rdfviews/internal/dict"
)

// Batch-at-a-time execution protocol. Instead of pulling one register row per
// operator call, vectorized operators (vec*.go) exchange fixed-capacity
// column batches: up to BatchSize rows stored as one flat []dict.ID per
// register slot, plus an optional selection vector of live row indexes.
// Filters narrow the selection vector without moving data; producers
// (scans, joins, sorts) emit dense batches with a nil selection.
//
// Ownership follows the row protocol's convention one level up: the batch an
// operator returns is valid only until its next nextBatch call, so every
// serial operator reuses one owned output batch (zero allocations per batch
// in steady state). Batches that cross goroutines — the exchange operators —
// are leased from a shared batchPool instead and recycled by the consumer
// once it advances past them.

// BatchSize is the number of rows a vectorized operator processes per call.
// 1024 rows keeps a full-width batch of a typical 4-variable pipeline at
// 32 KiB — resident in L1/L2 while each operator's tight loop runs — and
// amortizes an operator-boundary call over a thousand rows.
const BatchSize = 1024

// batch is one unit of the vectorized dataflow: n rows across width columns,
// of which sel (when non-nil) selects the live subset, in order. Columns are
// always full BatchSize slices — rows at index ≥ n (or outside sel) are
// stale garbage — so operators index without reslicing.
type batch struct {
	cols   [][]dict.ID // one column per register slot, each of length BatchSize
	sel    []int32     // ascending live row indexes; nil = all of 0..n-1
	n      int
	selBuf []int32 // backing storage for sel, allocated on first filter
}

// batchFree recycles whole batches across plan executions, per width: a
// pipeline's owned batches are width*8 KiB each and a plan builds several, so
// without reuse every evaluation pays their allocation, zeroing and GC scan.
// Widths beyond the array bound (queries with >16 variables) fall back to
// plain allocation.
const batchFreeMaxWidth = 16

var batchFree [batchFreeMaxWidth + 1]sync.Pool

// newBatch returns an empty batch of the given width with BatchSize rows per
// column (one backing allocation for all columns), reusing a released batch
// of the same width when one is available.
func newBatch(width int) *batch {
	if width <= batchFreeMaxWidth {
		if v := batchFree[width].Get(); v != nil {
			b := v.(*batch)
			b.reset()
			return b
		}
	}
	flat := make([]dict.ID, width*BatchSize)
	b := &batch{cols: make([][]dict.ID, width)}
	for i := range b.cols {
		b.cols[i] = flat[i*BatchSize : (i+1)*BatchSize : (i+1)*BatchSize]
	}
	return b
}

// release hands the batch back for reuse by a later newBatch of the same
// width. The caller must hold no references into its columns afterwards.
func (b *batch) release() {
	if b == nil || len(b.cols) > batchFreeMaxWidth {
		return
	}
	batchFree[len(b.cols)].Put(b)
}

// reset empties the batch for refilling.
func (b *batch) reset() {
	b.n = 0
	b.sel = nil
}

// selStorage returns the batch's selection-vector backing array, allocating
// it on first use; the caller fills a prefix and assigns it to sel.
func (b *batch) selStorage() []int32 {
	if b.selBuf == nil {
		b.selBuf = make([]int32, BatchSize)
	}
	return b.selBuf
}

// live returns the number of selected rows.
func (b *batch) live() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// identitySel is the shared 0..BatchSize-1 selection: liveSel returns a
// prefix of it for dense batches, so consumers iterate one code path.
var identitySel = func() []int32 {
	s := make([]int32, BatchSize)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}()

// liveSel returns the batch's live row indexes, ascending.
func (b *batch) liveSel() []int32 {
	if b.sel != nil {
		return b.sel
	}
	return identitySel[:b.n]
}

// batchPool recycles batches that cross goroutine boundaries: exchange
// workers lease output batches here and the consuming operator returns each
// one as it advances to the next, so steady-state parallel execution reuses
// ~2 batches per worker instead of allocating one per send. It is the
// batch-level extension of rowArena: same job (no per-unit allocations on the
// output path), one level of granularity up, and shared across goroutines.
type batchPool struct {
	width int
	mu    sync.Mutex
	free  []*batch
}

func newBatchPool(width int) *batchPool { return &batchPool{width: width} }

// get leases an empty batch of the pool's width.
func (p *batchPool) get() *batch {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		b.reset()
		return b
	}
	p.mu.Unlock()
	return newBatch(p.width)
}

// put returns a batch to the pool. The caller must hold no references into
// its columns afterwards.
func (p *batchPool) put(b *batch) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// releaseAll drains the pool's free list into the global batchFree pool; an
// exchange calls it on close so its leased batches outlive neither the
// execution nor the pool.
func (p *batchPool) releaseAll() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, b := range free {
		b.release()
	}
}
