package engine

import (
	"context"
	"sync/atomic"
)

// Cooperative cancellation for both execution tiers. ExecOptions.Ctx carries a
// per-request context (a deadline, or an HTTP client's disconnect) into
// execution; the entry points derive one interrupt token from it and thread it
// to the operators that loop without returning control — the leaf scans, the
// hash-join build drains and the exchange workers. Each such checkpoint polls
// the token once per batch (an atomic load plus a non-blocking channel
// receive, amortized over up to BatchSize rows) and reports EOF when it fires,
// so the pipeline above winds down through its normal end-of-stream path. The
// drain loops then surface ctx.Err() — a canceled query always returns an
// error, never a silently truncated result.

// cancelStops counts pipelines stopped early at an engine cancellation
// checkpoint, process-wide.
var cancelStops atomic.Int64

// CancelStops returns the number of executions stopped early by context
// cancellation since process start. It is the observability hook the serving
// tier's tests use to prove that a disconnected client's query actually
// stopped scanning rather than running to completion.
func CancelStops() int64 { return cancelStops.Load() }

// interrupt is the per-execution cancellation token shared by every operator
// of one pipeline. A nil *interrupt (context without cancellation) is valid
// and never fires.
type interrupt struct {
	done  <-chan struct{}
	fired atomic.Bool // memoized so later checkpoints skip the select
}

// newInterrupt derives a token from ctx; nil when ctx carries no cancellation.
func newInterrupt(ctx context.Context) *interrupt {
	if ctx == nil {
		return nil
	}
	if d := ctx.Done(); d != nil {
		return &interrupt{done: d}
	}
	return nil
}

// stop reports whether the execution has been canceled. The first checkpoint
// to observe the cancellation counts it in CancelStops (once per execution).
func (it *interrupt) stop() bool {
	if it == nil {
		return false
	}
	if it.fired.Load() {
		return true
	}
	select {
	case <-it.done:
		if it.fired.CompareAndSwap(false, true) {
			cancelStops.Add(1)
		}
		return true
	default:
		return false
	}
}

// ctxErr returns the options context's error, nil without a context.
func (o ExecOptions) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}
