package engine

import (
	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/store"
)

// Instantiate returns a copy of the plan bound to the given reader with the
// constant substitution applied to every compiled structure that carries
// constants: scan patterns, the atoms kept for explain output, head constants
// and head column labels. The receiver is not modified and stays usable — the
// clone shares the immutable step specs it does not rewrite, so instantiating
// a cached template per execution is cheap (one steps slice plus one atomSpec
// per substituted atom).
//
// This is what makes compiled plans reusable across snapshots and across
// parameter bindings: operator pipelines are built from p.st and the specs at
// Eval time, so a clone carrying a fresh snapshot and the caller's concrete
// constants executes the cached shape against current data. Join order and
// permutations are frozen at compile time — correct for any binding, merely
// tuned for the one that triggered compilation. Shard routing is NOT frozen:
// substitution changes which shard a bound position hashes to, so the
// concrete route is re-resolved from the instantiated patterns at
// pipeline-build time (buildOps/buildVecOps for exchanges, the store's
// routed NewCursor for serial scans). Only the route's *shape* — how many
// shards it spans, decided by which positions are bound — is stable across
// bindings, which is what keeps the compile-time parallelism decision valid.
//
// A nil reader keeps the plan's own; an empty substitution just rebinds.
func (p *QueryPlan) Instantiate(st store.Reader, subst map[dict.ID]dict.ID) *QueryPlan {
	q := *p
	if st != nil {
		q.st = st
	}
	if len(subst) == 0 {
		return &q
	}
	q.steps = append([]planStep(nil), p.steps...)
	for i := range q.steps {
		s := &q.steps[i]
		if s.spec == nil {
			continue
		}
		sp := *s.spec
		changed := false
		for pos := 0; pos < 3; pos++ {
			if id := sp.pat[pos]; id != store.Wildcard {
				if v, ok := subst[id]; ok {
					sp.pat[pos] = v
					changed = true
				}
			}
			if t := sp.atom[pos]; t.IsConst() {
				if v, ok := subst[t.ConstID()]; ok {
					sp.atom[pos] = cq.Const(v)
					changed = true
				}
			}
		}
		if changed {
			s.spec = &sp
		}
	}
	q.headConsts = append([]dict.ID(nil), p.headConsts...)
	for i, id := range q.headConsts {
		if v, ok := subst[id]; ok {
			q.headConsts[i] = v
		}
	}
	q.head = append([]cq.Term(nil), p.head...)
	for i, h := range q.head {
		if h.IsConst() {
			if v, ok := subst[h.ConstID()]; ok {
				q.head[i] = cq.Const(v)
			}
		}
	}
	return &q
}

// substCards substitutes representative constants for parameter sentinels
// before delegating to the exact store counts, so a parameterized template is
// join-ordered by the cardinalities of the concrete query that triggered its
// compilation rather than by sentinel IDs that match nothing.
type substCards struct {
	inner Cards
	repr  map[dict.ID]dict.ID
}

func (c substCards) AtomCount(a cq.Atom) float64 {
	for pos := 0; pos < 3; pos++ {
		if t := a[pos]; t.IsConst() {
			if v, ok := c.repr[t.ConstID()]; ok {
				a[pos] = cq.Const(v)
			}
		}
	}
	return c.inner.AtomCount(a)
}

// PlanQueryParams compiles a parameterized query whose body carries sentinel
// constants (parameter placeholders outside the dictionary's ID range),
// estimating cardinalities as if each sentinel held its representative
// concrete value from repr. Execute the result via Instantiate with a
// sentinel→value substitution.
func PlanQueryParams(st store.Reader, q *cq.Query, repr map[dict.ID]dict.ID) (*QueryPlan, error) {
	if len(repr) == 0 {
		return PlanQuery(st, q)
	}
	return PlanQueryWithStats(st, q, substCards{storeCards{st}, repr})
}
