package engine

import (
	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/store"
)

// The streaming executor: pull-based physical operators over the triple
// store's permutation indexes. Tuples flow through slice-based variable
// registers — a Row of width len(plan variables), indexed by the planner's
// compact variable numbering — so the hot path touches no maps and hashes no
// strings. Every operator's next() returns a row that is valid only until the
// following next() call; consumers that retain rows must copy them.
//
// Operator set (chosen by the planner in planner.go):
//
//   - scanOp: an index scan of one permutation range, binding triple
//     positions into registers;
//   - mergeJoinOp: joins a pipeline sorted on one register slot with an atom
//     cursor sorted on the matching triple position, buffering one equal-key
//     run of the right side at a time; further shared variables are residual
//     equality checks against each group triple;
//   - sortOp (sort.go): materializes the pipeline and re-emits it ordered by
//     one register slot — the sort-break operator that makes merge joins
//     available again further down a chain;
//   - hashJoinOp: builds a hash table over the atom's matching triples
//     (bucketed by a 64-bit key hash, verified by value) and probes it with
//     the streaming left pipeline; with no key columns it degrades to the
//     Cartesian product a disconnected query requires;
//   - hashJoinBuildLeftOp: the flipped build side — the pipeline is drained
//     into the table and the atom's cursor streams through as the probe,
//     chosen when the pipeline is estimated much smaller than the atom.
//
// Projection and duplicate elimination happen at the drain site (QueryPlan
// run) against a rowSet, so no operator materializes its output.

// op is a pull-based operator yielding register rows.
type op interface {
	// next returns the next row; the row is valid until the next call.
	next() (Row, bool)
}

// bindPos maps a triple position to the register slot it binds.
type bindPos struct {
	pos  int // 0..2: position in the scanned triple
	slot int // register slot of the variable at that position
}

// atomSpec is the compiled access path of one body atom: the pattern of its
// constants, the permutation to scan, and how matching triples bind into
// registers.
type atomSpec struct {
	atom   cq.Atom // retained for explain only; see planner.go
	pat    store.Pattern
	perm   store.Perm
	binds  []bindPos // first occurrence of each variable
	checks [][2]int  // positions that must be equal (repeated variables)
}

// bindInto writes the triple's variable bindings into the row, reporting
// false when a repeated-variable equality fails.
func (a *atomSpec) bindInto(row Row, t store.Triple) bool {
	for _, c := range a.checks {
		if t[c[0]] != t[c[1]] {
			return false
		}
	}
	for _, b := range a.binds {
		row[b.slot] = t[b.pos]
	}
	return true
}

// scanOp streams one permutation range, binding each matching triple into a
// fresh register row.
type scanOp struct {
	st      store.Reader
	spec    *atomSpec
	width   int
	intr    *interrupt
	started bool
	cur     store.Cursor
	out     Row
}

func (s *scanOp) next() (Row, bool) {
	if !s.started {
		s.started = true
		s.cur = s.st.NewCursor(s.spec.perm, s.spec.pat)
		s.out = make(Row, s.width)
	}
	for {
		if s.intr.stop() {
			return nil, false
		}
		t, ok := s.cur.Next()
		if !ok {
			return nil, false
		}
		if s.spec.bindInto(s.out, t) {
			return s.out, true
		}
	}
}

// mergeJoinOp merge-joins a left pipeline sorted on register slot `slot` with
// the atom's cursor sorted on triple position `rpos` (the planner picks a
// permutation that lists the atom's constants, then rpos). One equal-key run
// of right triples is buffered at a time, so duplicate keys on either side
// produce the full cross-combination.
//
// When the atom shares more than one variable with the pipeline, the merge
// runs on the sorted slot and the remaining shared variables are residual
// equality checks (extraSlots/extraPos) applied to each group triple — the
// multi-key generalization that keeps merge joins available for star and
// cycle shapes.
type mergeJoinOp struct {
	left       op
	st         store.Reader
	spec       *atomSpec
	slot       int   // join variable's register slot (left side, sorted)
	rpos       int   // join variable's triple position (right side, sorted)
	extraSlots []int // residual shared variables: register slots ...
	extraPos   []int // ... and the matching triple positions
	width      int
	intr       *interrupt

	started  bool
	cur      store.Cursor
	curT     store.Triple
	curOK    bool
	group    []store.Triple
	groupKey dict.ID
	haveGrp  bool
	emitting bool
	gi       int
	out      Row
}

func (m *mergeJoinOp) next() (Row, bool) {
	if !m.started {
		m.started = true
		m.cur = m.st.NewCursor(m.spec.perm, m.spec.pat)
		m.curT, m.curOK = m.cur.Next()
		m.out = make(Row, m.width)
	}
	for {
		if m.emitting {
			for m.gi < len(m.group) {
				t := m.group[m.gi]
				m.gi++
				// Residual shared variables must match the left row before the
				// triple's bindings overwrite their slots (with equal values
				// when the check passes, so the order is what matters).
				ok := true
				for i, p := range m.extraPos {
					if t[p] != m.out[m.extraSlots[i]] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				if m.spec.bindInto(m.out, t) {
					return m.out, true
				}
			}
			m.emitting = false
		}
		lrow, ok := m.left.next()
		if !ok {
			return nil, false
		}
		key := lrow[m.slot]
		if !m.haveGrp || key != m.groupKey {
			// Left keys are non-decreasing, so the right cursor only ever
			// moves forward. Both cursor advances are unbounded in the atom's
			// extent, so each polls the interrupt.
			for m.curOK && m.curT[m.rpos] < key {
				if m.intr.stop() {
					return nil, false
				}
				m.curT, m.curOK = m.cur.Next()
			}
			m.group = m.group[:0]
			for m.curOK && m.curT[m.rpos] == key {
				if m.intr.stop() {
					return nil, false
				}
				m.group = append(m.group, m.curT)
				m.curT, m.curOK = m.cur.Next()
			}
			m.groupKey, m.haveGrp = key, true
		}
		if len(m.group) == 0 {
			continue
		}
		copy(m.out, lrow)
		m.gi = 0
		m.emitting = true
	}
}

// close releases any parallel-scan workers feeding the pipeline below.
func (m *mergeJoinOp) close() { closeOp(m.left) }

// hashJoinOp builds a hash table over the atom's matching triples keyed by
// the shared variables' positions, then probes it with the streaming left
// pipeline. The table maps a 64-bit key hash to a chain of triple indexes
// (verified by value), so building allocates no per-bucket slices. With no
// key columns (a disconnected query) every triple lands in one chain and the
// operator computes the Cartesian product.
type hashJoinOp struct {
	left     op
	st       store.Reader
	spec     *atomSpec
	keySlots []int // probe: register slots of the shared variables
	keyPos   []int // build: triple positions of the shared variables
	width    int
	intr     *interrupt

	built    bool
	table    *idTable       // key hash -> chain head, as triple index + 1
	tris     []store.Triple // build-side triples passing the atom's checks
	chains   []int32        // collision chain, same encoding as table
	lrow     Row
	chain    int32
	emitting bool
	out      Row
}

// close releases any parallel-scan workers feeding the pipeline below.
func (j *hashJoinOp) close() { closeOp(j.left) }

// hashIDs hashes the triple values at the given positions, consistently with
// hashValues so build and probe sides agree.
func hashIDs(t store.Triple, pos []int) uint64 {
	h := hashSeed
	for _, p := range pos {
		h = hashMix(h, uint64(t[p]))
	}
	return h
}

func (j *hashJoinOp) build() {
	cur := j.st.NewCursor(j.spec.perm, j.spec.pat)
	n := cur.Remaining()
	j.table = newIDTable(n)
	j.tris = make([]store.Triple, 0, n)
	j.chains = make([]int32, 0, n)
	for {
		if j.intr.stop() {
			// Partial build is fine: the drain above polls the same interrupt
			// and surfaces ctx.Err() before any row escapes.
			break
		}
		t, ok := cur.Next()
		if !ok {
			break
		}
		keep := true
		for _, c := range j.spec.checks {
			if t[c[0]] != t[c[1]] {
				keep = false
				break
			}
		}
		if keep {
			h := hashIDs(t, j.keyPos)
			j.tris = append(j.tris, t)
			j.chains = append(j.chains, j.table.get(h))
			j.table.put(h, int32(len(j.tris)))
		}
	}
	j.out = make(Row, j.width)
	j.built = true
}

// hashJoinBuildLeftOp is the hash join with the build side flipped: the
// planner chooses it when the pipeline-so-far is estimated smaller than the
// atom's extent. The left pipeline is drained into the hash table (rows
// copied into an arena, keyed by the shared variables' register slots) and
// the atom's cursor streams through as the probe side. Output order follows
// the probe cursor's permutation, so the planner can pick the permutation's
// post-prefix column to establish a new sort order for downstream merges.
type hashJoinBuildLeftOp struct {
	left     op
	st       store.Reader
	spec     *atomSpec
	keySlots []int // build: register slots of the shared variables
	keyPos   []int // probe: triple positions of the shared variables
	width    int
	intr     *interrupt

	built    bool
	table    *idTable // key hash -> chain head, as build row index + 1
	brows    []Row    // build-side pipeline rows (copied: buffers are reused)
	chains   []int32  // collision chain, same encoding as table
	cur      store.Cursor
	curT     store.Triple
	chain    int32
	emitting bool
	out      Row
}

// close releases any parallel-scan workers feeding the pipeline below.
func (j *hashJoinBuildLeftOp) close() { closeOp(j.left) }

func (j *hashJoinBuildLeftOp) build() {
	j.table = newIDTable(64)
	var arena rowArena
	for {
		row, ok := j.left.next()
		if !ok {
			break
		}
		h := hashValues(row, j.keySlots)
		j.brows = append(j.brows, arena.copyRow(row))
		j.chains = append(j.chains, j.table.get(h))
		j.table.put(h, int32(len(j.brows)))
	}
	j.out = make(Row, j.width)
	j.built = true
}

func (j *hashJoinBuildLeftOp) next() (Row, bool) {
	if !j.built {
		j.build()
		if len(j.brows) == 0 {
			return nil, false
		}
		j.cur = j.st.NewCursor(j.spec.perm, j.spec.pat)
	}
	for {
		if j.intr.stop() {
			return nil, false
		}
		if j.emitting {
			for j.chain != 0 {
				r := j.brows[j.chain-1]
				j.chain = j.chains[j.chain-1]
				match := true
				for i, p := range j.keyPos {
					if j.curT[p] != r[j.keySlots[i]] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				copy(j.out, r)
				if j.spec.bindInto(j.out, j.curT) {
					return j.out, true
				}
			}
			j.emitting = false
		}
		t, ok := j.cur.Next()
		if !ok {
			return nil, false
		}
		keep := true
		for _, c := range j.spec.checks {
			if t[c[0]] != t[c[1]] {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		chain := j.table.get(hashIDs(t, j.keyPos))
		if chain == 0 {
			continue
		}
		j.curT = t
		j.chain = chain
		j.emitting = true
	}
}

func (j *hashJoinOp) next() (Row, bool) {
	if !j.built {
		j.build()
	}
	for {
		if j.emitting {
			for j.chain != 0 {
				t := j.tris[j.chain-1]
				j.chain = j.chains[j.chain-1]
				match := true
				for i, p := range j.keyPos {
					if t[p] != j.lrow[j.keySlots[i]] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				if j.spec.bindInto(j.out, t) {
					return j.out, true
				}
			}
			j.emitting = false
		}
		lrow, ok := j.left.next()
		if !ok {
			return nil, false
		}
		chain := j.table.get(hashValues(lrow, j.keySlots))
		if chain == 0 {
			continue
		}
		copy(j.out, lrow)
		j.lrow = lrow
		j.chain = chain
		j.emitting = true
	}
}
