package engine

import (
	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/store"
)

// evalQueryINL is the original recursive index-nested-loop evaluator: atoms
// are ordered greedily (most selective first, preferring atoms bound to
// already-placed variables) and each atom is resolved through the store's
// permutation indexes under the current partial binding held in a map.
//
// It is superseded by the planned streaming pipeline (planner.go,
// operators.go) but kept as a correctness oracle for property tests and as
// the baseline of the old-vs-new benchmarks in bench_test.go. Like the
// planned paths it reads through store.Reader, so the oracle can replay
// against a pinned snapshot as well as a quiesced live store.
func evalQueryINL(st store.Reader, q *cq.Query) (*Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	order, _ := orderAtoms(q, storeCards{st})
	out := NewRelation(q.Head)
	seen := newRowSet(16)
	bind := make(map[cq.Term]dict.ID)

	var rec func(k int)
	rec = func(k int) {
		if k == len(order) {
			row := make(Row, len(q.Head))
			for i, h := range q.Head {
				if h.IsConst() {
					row[i] = h.ConstID()
				} else {
					row[i] = bind[h]
				}
			}
			if seen.add(row) {
				out.Rows = append(out.Rows, row)
			}
			return
		}
		a := q.Atoms[order[k]]
		var pat store.Pattern
		for p := 0; p < 3; p++ {
			switch {
			case a[p].IsConst():
				pat[p] = a[p].ConstID()
			default:
				if v, ok := bind[a[p]]; ok {
					pat[p] = v
				} else {
					pat[p] = store.Wildcard
				}
			}
		}
		st.Scan(pat, func(t store.Triple) bool {
			var added []cq.Term
			ok := true
			for p := 0; p < 3 && ok; p++ {
				term := a[p]
				if term.IsConst() {
					continue
				}
				if v, bound := bind[term]; bound {
					if v != t[p] {
						ok = false
					}
					continue
				}
				bind[term] = t[p]
				added = append(added, term)
			}
			if ok {
				rec(k + 1)
			}
			for _, v := range added {
				delete(bind, v)
			}
			return true
		})
	}
	rec(0)
	return out, nil
}
