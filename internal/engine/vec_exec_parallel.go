package engine

import (
	"sync"

	"rdfviews/internal/cq"
)

// Parallel vectorized rewriting execution: the batch-protocol counterparts of
// exec_parallel.go's operators. Workers exchange pooled column batches — one
// channel send per up-to-BatchSize rows instead of per 256-row slab of
// arena-copied rows — and the consumer recycles each batch into the pool as
// it advances, so steady-state parallel rewriting allocates nothing per
// batch.

// drainVecRelTo streams one operator's live rows into out as dense pooled
// batches, stopping early when done closes; it reports whether the source was
// fully drained. Rows are compacted across source batches, so filters that
// pass few rows per input batch still fill the handoff batches.
func drainVecRelTo(src vrop, w int, pool *batchPool, out chan<- *batch, done <-chan struct{}) bool {
	var acc *batch
	flush := func() bool {
		if acc == nil || acc.n == 0 {
			return true
		}
		select {
		case out <- acc:
			acc = nil
			return true
		case <-done:
			pool.put(acc)
			acc = nil
			return false
		}
	}
	for {
		b, ok := src.nextBatch()
		if !ok {
			break
		}
		for _, i := range b.liveSel() {
			if acc == nil {
				acc = pool.get()
			}
			k := acc.n
			for c := 0; c < w; c++ {
				acc.cols[c][k] = b.cols[c][i]
			}
			acc.n = k + 1
			if acc.n == BatchSize {
				if !flush() {
					return false
				}
			}
		}
	}
	if !flush() {
		return false
	}
	if acc != nil {
		pool.put(acc)
	}
	return true
}

// vecRelExchangeOp drains independent source streams on up to workers worker
// goroutines, all feeding one channel of pooled batches; batches surface in
// whatever order workers produce them and return to the pool as the consumer
// advances.
type vecRelExchangeOp struct {
	labels  []cq.Term
	sources []vrop
	workers int

	started bool
	closed  bool
	done    chan struct{}
	ch      chan *batch
	pool    *batchPool
	cur     *batch // the batch currently on loan to the consumer
}

func newVecRelExchange(cols []cq.Term, sources []vrop, workers int) *vecRelExchangeOp {
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}
	return &vecRelExchangeOp{labels: cols, sources: sources, workers: workers}
}

func (e *vecRelExchangeOp) cols() []cq.Term { return e.labels }

func (e *vecRelExchangeOp) start() {
	e.done = make(chan struct{})
	e.ch = make(chan *batch, e.workers)
	e.pool = newBatchPool(len(e.labels))
	idx := make(chan int, len(e.sources))
	for i := range e.sources {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if !drainVecRelTo(e.sources[i], len(e.labels), e.pool, e.ch, e.done) {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(e.ch)
	}()
	e.started = true
}

func (e *vecRelExchangeOp) nextBatch() (*batch, bool) {
	if !e.started {
		e.start()
	}
	if e.cur != nil {
		e.pool.put(e.cur)
		e.cur = nil
	}
	b, ok := <-e.ch
	if !ok {
		return nil, false
	}
	e.cur = b
	return b, true
}

func (e *vecRelExchangeOp) close() {
	if e.started && !e.closed {
		close(e.done)
		for b := range e.ch { // unblock any worker parked on send
			b.release()
		}
		if e.cur != nil {
			e.cur.release()
			e.cur = nil
		}
		e.pool.releaseAll()
	}
	e.closed = true
	for _, s := range e.sources {
		closeVop(s)
	}
}

// vecParallelUnionOp evaluates union branches concurrently (up to DOP at a
// time) through a vectorized exchange and deduplicates at the consumer into
// dense owned output batches.
type vecParallelUnionOp struct {
	ex      *vecRelExchangeOp
	seen    *rowSet
	scratch Row

	b   *batch
	sel []int32
	si  int
	out *batch
}

func newVecParallelUnion(branches []vrop, sizeHint, dop int) *vecParallelUnionOp {
	return &vecParallelUnionOp{
		ex:   newVecRelExchange(branches[0].cols(), branches, dop),
		seen: newRowSet(sizeHint),
	}
}

func (u *vecParallelUnionOp) cols() []cq.Term { return u.ex.cols() }

func (u *vecParallelUnionOp) close() {
	u.out.release()
	u.out = nil
	u.ex.close()
}

// drainInto is the vecSink fast path: rows surviving the cross-branch dedup
// set go straight into the relation, with no output batch in between.
func (u *vecParallelUnionOp) drainInto(out *Relation) {
	w := len(u.cols())
	if u.scratch == nil {
		u.scratch = make(Row, w)
	}
	for {
		if u.b == nil || u.si >= len(u.sel) {
			b, ok := u.ex.nextBatch()
			if !ok {
				u.b = nil
				return
			}
			u.b, u.sel, u.si = b, b.liveSel(), 0
		}
		bcols := u.b.cols
		for u.si < len(u.sel) {
			i := u.sel[u.si]
			u.si++
			for c := 0; c < w; c++ {
				u.scratch[c] = bcols[c][i]
			}
			if kept, added := u.seen.addCopy(u.scratch); added {
				out.Rows = append(out.Rows, kept)
			}
		}
	}
}

func (u *vecParallelUnionOp) nextBatch() (*batch, bool) {
	w := len(u.cols())
	if u.out == nil {
		u.out = newBatch(w)
		u.scratch = make(Row, w)
	}
	out := u.out
	out.reset()
	for {
		if u.b == nil || u.si >= len(u.sel) {
			b, ok := u.ex.nextBatch()
			if !ok {
				u.b = nil
				if out.n > 0 {
					return out, true
				}
				return nil, false
			}
			u.b, u.sel, u.si = b, b.liveSel(), 0
		}
		for u.si < len(u.sel) {
			if out.n == BatchSize {
				return out, true
			}
			i := u.sel[u.si]
			u.si++
			for c := 0; c < w; c++ {
				u.scratch[c] = u.b.cols[c][i]
			}
			if _, added := u.seen.addCopy(u.scratch); added {
				k := out.n
				for c := 0; c < w; c++ {
					out.cols[c][k] = u.scratch[c]
				}
				out.n = k + 1
			}
		}
	}
}

// vecParallelHashJoinRelOp is the partitioned parallel hash join over batch
// streams: the build side is drained once and scattered into dop key-hash
// partitions whose tables build concurrently; probe workers (one per split
// probe substream) then probe the read-only partitions and emit assembled
// output rows as pooled batches. The empty-probe fast path is preserved: one
// probe batch is peeked per substream before the build, and zero rows across
// all substreams skip the build entirely.
type vecParallelHashJoinRelOp struct {
	left, right vrop
	shape       joinShapeInfo
	lIdx, rIdx  []int
	buildLeft   bool
	dop         int
	leftWidth   int
	intr        *interrupt

	started bool
	closed  bool
	done    chan struct{}
	ch      chan *batch
	pool    *batchPool
	parts   []joinPartition
	cur     *batch // the batch currently on loan to the consumer
}

func newVecParallelHashJoin(left, right vrop, shape joinShapeInfo, lIdx, rIdx []int, buildLeft bool, dop int, intr *interrupt) *vecParallelHashJoinRelOp {
	return &vecParallelHashJoinRelOp{left: left, right: right, shape: shape, lIdx: lIdx, rIdx: rIdx,
		buildLeft: buildLeft, dop: dop, leftWidth: len(left.cols()), intr: intr}
}

func (j *vecParallelHashJoinRelOp) cols() []cq.Term { return j.shape.outCols }

func (j *vecParallelHashJoinRelOp) start() {
	j.started = true
	j.done = make(chan struct{})
	j.ch = make(chan *batch, j.dop)
	j.pool = newBatchPool(len(j.shape.outCols))
	build, bIdx := j.right, j.rIdx
	probe, pIdx := j.left, j.lIdx
	if j.buildLeft {
		build, bIdx, probe, pIdx = j.left, j.lIdx, j.right, j.rIdx
	}
	streams, any := splitVecProbeStreams(probe, j.dop)
	if !any {
		close(j.ch) // empty probe: the join is empty, never drain the build
		return
	}
	j.buildPartitions(build, bIdx)
	var wg sync.WaitGroup
	for _, s := range streams {
		wg.Add(1)
		go func(s vrop) {
			defer wg.Done()
			j.probeStream(s, pIdx)
		}(s)
	}
	go func() {
		wg.Wait()
		close(j.ch)
	}()
}

// splitVecProbeStreams splits the probe side into independent substreams when
// it supports splitting (one stream otherwise) and peeks for a first
// non-empty batch across them: when every stream is empty the caller skips
// the build entirely. The peeked batch is pushed back onto its stream;
// streams peeked to EOF stay in the set — operators keep reporting EOF after
// exhaustion.
func splitVecProbeStreams(probe vrop, parts int) ([]vrop, bool) {
	streams := splitVecRel(probe, parts)
	if streams == nil {
		streams = []vrop{probe}
	}
	for i := range streams {
		b, ok := streams[i].nextBatch()
		if !ok {
			continue
		}
		streams[i] = &vecPushback{in: streams[i], b: b}
		return streams, true
	}
	return nil, false
}

// vecPushback replays one peeked batch before the rest of its input's stream.
// The peeked batch stays valid because the input is not pulled again until it
// has been handed out.
type vecPushback struct {
	in vrop
	b  *batch
}

func (p *vecPushback) cols() []cq.Term { return p.in.cols() }
func (p *vecPushback) close()          { closeVop(p.in) }

func (p *vecPushback) nextBatch() (*batch, bool) {
	if p.b != nil {
		b := p.b
		p.b = nil
		return b, true
	}
	return p.in.nextBatch()
}

// buildPartitions drains the build side once, scattering arena-gathered rows
// into dop key-hash partitions, then builds the partition hash tables
// concurrently (one goroutine per partition).
func (j *vecParallelHashJoinRelOp) buildPartitions(build vrop, bIdx []int) {
	j.parts = make([]joinPartition, j.dop)
	if s, ok := build.(*vecRelScanOp); ok && len(s.eq) == 0 && s.i == 0 {
		// Scatter straight from the extent: the scan only relabels columns,
		// so its rows hash and partition as-is — no batch transpose, no
		// arena copies. The loop walks the whole extent without pulling
		// batches, so it polls the interrupt itself, once per batch-worth of
		// rows (the serial zero-copy build does the same).
		rows := s.rows
		s.i = len(rows)
		for r, row := range rows {
			if r&(BatchSize-1) == 0 && j.intr.stop() {
				break
			}
			h := hashValues(row, bIdx)
			p := &j.parts[h%uint64(j.dop)]
			p.rows = append(p.rows, row)
			p.hashes = append(p.hashes, h)
		}
	} else {
		var arena rowArena
		w := len(build.cols())
		for {
			b, ok := build.nextBatch()
			if !ok {
				break
			}
			for _, i := range b.liveSel() {
				row := arena.alloc(w)
				for c := 0; c < w; c++ {
					row[c] = b.cols[c][i]
				}
				h := hashValues(row, bIdx)
				p := &j.parts[h%uint64(j.dop)]
				p.rows = append(p.rows, row)
				p.hashes = append(p.hashes, h)
			}
		}
	}
	var wg sync.WaitGroup
	for i := range j.parts {
		part := &j.parts[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			part.table = newIDTable(len(part.rows))
			part.chains = make([]int32, len(part.rows))
			for r, h := range part.hashes {
				part.chains[r] = part.table.get(h)
				part.table.put(h, int32(r+1))
			}
		}()
	}
	wg.Wait()
}

// probeStream drains one probe substream against the partitioned build,
// assembling output rows into pooled batches on the shared channel.
func (j *vecParallelHashJoinRelOp) probeStream(s vrop, pIdx []int) {
	var acc *batch
	flush := func() bool {
		if acc == nil || acc.n == 0 {
			return true
		}
		select {
		case j.ch <- acc:
			acc = nil
			return true
		case <-j.done:
			j.pool.put(acc)
			acc = nil
			return false
		}
	}
	hashes := make([]uint64, BatchSize)
	for {
		b, ok := s.nextBatch()
		if !ok {
			break
		}
		sel := b.liveSel()
		hs := hashes[:len(sel)]
		for i := range hs {
			hs[i] = hashSeed
		}
		for _, c := range pIdx {
			col := b.cols[c]
			for k, i := range sel {
				hs[k] = hashMix(hs[k], uint64(col[i]))
			}
		}
		for k, i := range sel {
			h := hs[k]
			part := &j.parts[h%uint64(j.dop)]
			prow := int(i)
			for c := part.table.get(h); c != 0; c = part.chains[c-1] {
				brow := part.rows[c-1]
				match := true
				for _, key := range j.shape.keys {
					if j.buildLeft {
						if b.cols[key.ri][prow] != brow[key.li] {
							match = false
							break
						}
					} else if b.cols[key.li][prow] != brow[key.ri] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				if acc == nil {
					acc = j.pool.get()
				}
				k := acc.n
				if j.buildLeft {
					for c := 0; c < j.leftWidth; c++ {
						acc.cols[c][k] = brow[c]
					}
					for i2, ri := range j.shape.rightKeep {
						acc.cols[j.leftWidth+i2][k] = b.cols[ri][prow]
					}
				} else {
					for c := 0; c < j.leftWidth; c++ {
						acc.cols[c][k] = b.cols[c][prow]
					}
					for i2, ri := range j.shape.rightKeep {
						acc.cols[j.leftWidth+i2][k] = brow[ri]
					}
				}
				acc.n = k + 1
				if acc.n == BatchSize {
					if !flush() {
						return
					}
				}
			}
		}
	}
	if flush() && acc != nil {
		j.pool.put(acc)
	}
}

func (j *vecParallelHashJoinRelOp) nextBatch() (*batch, bool) {
	if !j.started {
		j.start()
	}
	if j.cur != nil {
		j.pool.put(j.cur)
		j.cur = nil
	}
	b, ok := <-j.ch
	if !ok {
		return nil, false
	}
	j.cur = b
	return j.cur, true
}

func (j *vecParallelHashJoinRelOp) close() {
	if j.started && !j.closed {
		close(j.done)
		for b := range j.ch { // unblock any worker parked on send
			b.release()
		}
		if j.cur != nil {
			j.cur.release()
			j.cur = nil
		}
		j.pool.releaseAll()
	}
	j.closed = true
	closeVop(j.left)
	closeVop(j.right)
}
