package engine

import (
	"fmt"
	"strings"
	"testing"

	"rdfviews/internal/cq"
	"rdfviews/internal/store"
)

// cardsFunc adapts a function to the Cards interface, standing in for the
// ε-estimate statistics providers of the view-selection search.
type cardsFunc func(cq.Atom) float64

func (f cardsFunc) AtomCount(a cq.Atom) float64 { return f(a) }

// chainStore builds a layered chain dataset whose first hop (p0) is sparse
// and whose later hops (p1..p3) are dense — the shape where sorting the small
// pipeline to merge against a large, already-sorted predicate index beats
// hash-joining it.
func chainStore(t testing.TB, k int) (*store.Store, *cq.Parser) {
	return chainStoreDual(t, k, 0)
}

// chainStoreDual is chainStore over an explicit placement: subjectK
// subject-hash shards plus objectK object-hash replica shards (0 = none).
func chainStoreDual(t testing.TB, subjectK, objectK int) (*store.Store, *cq.Parser) {
	if h, ok := t.(interface{ Helper() }); ok {
		h.Helper()
	}
	st := store.New()
	if subjectK > 1 || objectK > 0 {
		st = store.NewDual(subjectK, objectK)
	}
	d := st.Dict()
	add := func(s, p, o string) {
		st.Add(store.Triple{d.EncodeIRI(s), d.EncodeIRI(p), d.EncodeIRI(o)})
	}
	n := func(i int) string { return fmt.Sprintf("n%d", i%20) }
	for i := 0; i < 8; i++ {
		add(fmt.Sprintf("a%d", i), "p0", n(i%4))
	}
	// p1..p3 are dense relations over one pool of 20 nodes (160 distinct
	// triples each), so chains, cycles and value joins all have matches.
	for i := 0; i < 16; i++ {
		for j := 0; j < 10; j++ {
			add(n(i), "p1", n(i+j))
			add(n(i+j), "p2", n(i+3*j))
			add(n(i), "p3", n(i+2*j+5))
		}
	}
	return st, cq.NewParser(d)
}

const chain4Src = "q(X, V) :- t(X, p0, Y), t(Y, p1, Z), t(Z, p2, W), t(W, p3, V)"

// TestPlanChainOfFourSortBreak is the acceptance shape of the Sort operator:
// a chain of four atoms must plan with at least two merge joins separated by
// an explicit Sort — the pipeline re-sorts at each sort break instead of
// degenerating into cascading hash joins.
func TestPlanChainOfFourSortBreak(t *testing.T) {
	st, p := chainStore(t, 1)
	q := p.MustParseQuery(chain4Src)
	plan, err := PlanQuery(st, q)
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.Describe().Operators()
	merges, sorts := 0, 0
	sawSortBetweenMerges := false
	seenMerge := false
	for _, op := range ops {
		switch op {
		case "MergeJoin":
			merges++
			seenMerge = true
		case "Sort":
			sorts++
			if seenMerge {
				sawSortBetweenMerges = true
			}
		case "HashJoin":
			t.Fatalf("chain should not hash-join, got %v\n%s", ops, plan.Explain())
		}
	}
	if merges < 2 || sorts < 1 || !sawSortBetweenMerges {
		t.Fatalf("chain of 4 should plan ≥2 merge joins separated by a Sort, got %d merges, %d sorts:\n%s",
			merges, sorts, plan.Explain())
	}
	assertSameAnswers(t, st, q)
}

// TestPlanDepthAgainstINLShapes is the INL-oracle differential matrix of the
// planner-depth features: chain, star, cycle and repeated-variable shapes,
// each evaluated over a flat, a 4-subject-shard and a 4×4 dual-partitioned
// store, with planner depth on and off — all combinations must agree with
// the recursive oracle.
func TestPlanDepthAgainstINLShapes(t *testing.T) {
	forceParallel(t)
	defer func() { enablePlannerDepth = true }()
	shapes := []string{
		chain4Src,
		"q(X) :- t(X, p1, Y), t(X, p2, Z), t(X, p3, W)",    // star
		"q(X, Z) :- t(X, p1, Y), t(Y, p2, Z), t(Z, p1, X)", // cycle
		"q(X, Y) :- t(X, p1, Y), t(Y, p2, X)",              // 2-cycle (two shared vars)
		"q(X) :- t(X, p2, X)",                              // repeated variable
		"q(X, W) :- t(X, p1, Y), t(Z, p2, Y), t(Z, p3, W)", // value join mid-chain
		"q(X, Z) :- t(X, p1, Y), t(Y, p2, Z), t(X, p3, Z)", // diamond closure
	}
	layouts := []struct{ subjectK, objectK int }{{1, 0}, {4, 0}, {4, 4}}
	for _, depth := range []bool{true, false} {
		enablePlannerDepth = depth
		for _, lay := range layouts {
			st, p := chainStoreDual(t, lay.subjectK, lay.objectK)
			for _, src := range shapes {
				q := p.MustParseQuery(src)
				p.ResetNames()
				got, err := EvalQuery(st, q)
				if err != nil {
					t.Fatalf("depth=%v layout=%d/%d %s: %v", depth, lay.subjectK, lay.objectK, src, err)
				}
				want, err := evalQueryINL(st, q)
				if err != nil {
					t.Fatal(err)
				}
				if !got.EqualAsSet(want) {
					t.Fatalf("depth=%v layout=%d/%d %s: pipeline %d rows, INL %d rows",
						depth, lay.subjectK, lay.objectK, src, got.Len(), want.Len())
				}
			}
		}
	}
	enablePlannerDepth = true
}

// TestPlanBuildSideChoice pins the cost-based hash-join build side: when the
// pipeline-so-far is estimated smaller than the atom the table is built over
// the pipeline (build=left), and over the atom otherwise (build=right). The
// ε-estimates are chosen so the hash join beats sorting at the break.
func TestPlanBuildSideChoice(t *testing.T) {
	st, p := chainStore(t, 1)
	pred := func(a cq.Atom) string {
		s, _ := st.Dict().Decode(a[1].ConstID())
		return s.Value
	}
	checkAgainstOracle := func(t *testing.T, plan *QueryPlan, q *cq.Query) {
		t.Helper()
		r, err := plan.Eval()
		if err != nil {
			t.Fatal(err)
		}
		want, err := evalQueryINL(st, q)
		if err != nil {
			t.Fatal(err)
		}
		if !r.EqualAsSet(want) {
			t.Fatalf("build-side plan answers differ from INL: %d vs %d rows", r.Len(), want.Len())
		}
	}

	// The break at p2 sits in the narrow band where the hash join still
	// beats sorting 128 pipeline rows AND the pipeline is a buildLeftMargin
	// below the atom (128·16 < 2200) => hash join, build=left.
	q := p.MustParseQuery("q(X, V) :- t(X, p0, Y), t(Y, p1, Z), t(Z, p2, W), t(W, p3, V)")
	est := cardsFunc(func(a cq.Atom) float64 {
		switch pred(a) {
		case "p0":
			return 128
		case "p1":
			return 4000
		case "p2":
			return 2200
		default:
			return 3000
		}
	})
	plan, err := PlanQueryWithStats(st, q, est)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	if !strings.Contains(out, "build=left") {
		t.Fatalf("pipeline smaller than atom should build=left:\n%s", out)
	}
	if strings.Contains(out, "Sort") {
		t.Fatalf("large near-equal sides should prefer hash joins over sorting:\n%s", out)
	}
	checkAgainstOracle(t, plan, q)

	// A cross product inflates the pipeline past the next atom's extent
	// (30×40 = 1200 > 500), so the join after it builds over the atom side:
	// build=right, with the probe pipeline streaming through.
	p.ResetNames()
	q = p.MustParseQuery("q(X, V) :- t(X, p0, Y), t(Z, p1, W), t(W, p2, V)")
	est = cardsFunc(func(a cq.Atom) float64 {
		switch pred(a) {
		case "p0":
			return 30
		case "p1":
			return 40
		default:
			return 500
		}
	})
	plan, err = PlanQueryWithStats(st, q, est)
	if err != nil {
		t.Fatal(err)
	}
	out = plan.Explain()
	if !strings.Contains(out, "CrossProduct") || !strings.Contains(out, "build=right") {
		t.Fatalf("inflated pipeline should build=right after the cross:\n%s", out)
	}
	checkAgainstOracle(t, plan, q)
}

// TestStoreCardsRepeatedVariable is the regression test for AtomCount on
// repeated-variable atoms: t(X, p, X) must count (or estimate) only the
// triples passing the equality, not every p-triple.
func TestStoreCardsRepeatedVariable(t *testing.T) {
	st := store.New()
	d := st.Dict()
	add := func(s, p, o string) {
		st.Add(store.Triple{d.EncodeIRI(s), d.EncodeIRI(p), d.EncodeIRI(o)})
	}
	// 40 loop-free p-triples plus 3 reflexive ones.
	for i := 0; i < 40; i++ {
		add(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))
	}
	for i := 0; i < 3; i++ {
		add(fmt.Sprintf("r%d", i), "p", fmt.Sprintf("r%d", i))
	}
	// 10 q-triples.
	for i := 0; i < 10; i++ {
		add(fmt.Sprintf("r%d", i%3), "q", fmt.Sprintf("w%d", i))
	}
	p := cq.NewParser(d)
	reflexive := p.MustParseQuery("q(X) :- t(X, p, X)").Atoms[0]
	cards := storeCards{st}
	if got := cards.AtomCount(reflexive); got != 3 {
		t.Fatalf("AtomCount(t(X,p,X)) = %v, want exact 3", got)
	}

	// Above the scan limit the √n discount applies instead of the raw count.
	old := repeatedVarScanLimit
	repeatedVarScanLimit = 10
	raw := float64(st.Count(store.Pattern{0, d.EncodeIRI("p"), 0}))
	if got := cards.AtomCount(reflexive); got >= raw || got <= 0 {
		t.Fatalf("discounted AtomCount = %v, want in (0, %v)", got, raw)
	}
	repeatedVarScanLimit = old

	// The fixed greedy order: the reflexive atom (3 matches) must drive the
	// plan ahead of the q atom (10 matches) — under the old all-p count (43)
	// the q atom would have driven.
	q := p.MustParseQuery("q(X, Y) :- t(X, p, X), t(X, q, Y)")
	plan, err := PlanQuery(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.steps[0].spec.atom[1] != reflexive[1] {
		t.Fatalf("repeated-variable atom should drive the plan:\n%s", plan.Explain())
	}
	assertSameAnswers(t, st, q)
}

// TestDistinctSizeHint pins the clamp at both ends: small estimates size the
// distinct set down to them (a point lookup should not pay for a 64-slot
// table; newIDTable's 16-slot floor bounds the low end and an undersized
// table doubles on the way up), and estimates at or above the cap size it to
// the cap instead of being discarded (the old cliff back to a 64-slot table).
func TestDistinctSizeHint(t *testing.T) {
	cases := []struct {
		est  float64
		want int
	}{
		{0, 1},
		{63, 63},
		{1000, 1000},
		{1 << 20, distinctHintCap},
		{1 << 21, distinctHintCap},
		{1e18, distinctHintCap},
	}
	for _, c := range cases {
		if got := distinctSizeHint(c.est); got != c.want {
			t.Errorf("distinctSizeHint(%v) = %d, want %d", c.est, got, c.want)
		}
	}
}

// TestPlanMultiKeyMergeResidual pins the multi-shared-variable merge join on
// a flat fixture: both orders of a 2-cycle must agree with the oracle, and
// the plan must carry the residual detail.
func TestPlanMultiKeyMergeResidual(t *testing.T) {
	st, p := chainStore(t, 1)
	q := p.MustParseQuery("q(X, Y) :- t(X, p1, Y), t(Y, p2, X)")
	plan, err := PlanQuery(st, q)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	if !strings.Contains(out, "MergeJoin") || !strings.Contains(out, "residual=[") {
		t.Fatalf("2-cycle should merge with residual equality:\n%s", out)
	}
	assertSameAnswers(t, st, q)
}
