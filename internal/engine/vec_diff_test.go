package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
	"rdfviews/internal/datagen"
	"rdfviews/internal/store"
)

// Row-vs-batch differentials: the vectorized executors must reproduce the
// row-at-a-time oracle's exact row multiset on every shape, store layout and
// DOP. The oracle is selected with ExecOptions{Vectorized: VecOff}; the
// default is the batch protocol.

// diffStores builds the flat, 4-shard and 4×4 dual-partitioned variants of
// the standard 20k-triple dataset, with a few self-loop edges added so the
// repeated-variable shape has matches.
func diffStores(t *testing.T) (flat, sharded, dual *store.Store) {
	t.Helper()
	flat, _ = datagen.Generate(datagen.Config{Triples: 20000, Seed: 3})
	d := flat.Dict()
	p0 := d.EncodeIRI(datagen.PropName(0))
	for i := 0; i < 50; i++ {
		n := d.EncodeIRI(fmt.Sprintf("self%d", i))
		flat.Add(store.Triple{n, p0, n})
	}
	flat.Count(store.Pattern{})
	sharded = store.NewWithDictSharded(d, 4)
	sharded.AddBatch(flat.Triples())
	sharded.Count(store.Pattern{})
	dual = store.NewWithDictDual(d, 4, 4)
	dual.AddBatch(flat.Triples())
	dual.Count(store.Pattern{})
	return flat, sharded, dual
}

// TestVectorizedEvalMatchesRows is the store-side matrix: nine query shapes
// (scans, chains, stars, a five-atom mix, a value join, a self-loop) over the
// flat, 4-shard and 4×4 dual-partitioned stores, vectorized vs row oracle,
// multiset-exact. The parallel-scan threshold is dropped so the sharded runs
// exercise the exchange and ordered-gather operators in both protocols, over
// both partition sides on the dual layout.
func TestVectorizedEvalMatchesRows(t *testing.T) {
	oldMin := parallelScanMinRows
	parallelScanMinRows = 0
	defer func() { parallelScanMinRows = oldMin }()

	shapes := map[string]string{
		"full-scan":  "q(X, P, Y) :- t(X, P, Y)",
		"pred-scan":  "q(X, Y) :- t(X, " + datagen.PropName(0) + ", Y)",
		"chain3":     benchQueries["Chain3"],
		"chain4":     benchQueries["Chain4"],
		"star3":      benchQueries["Star3"],
		"star4":      benchQueries["Star4"],
		"multijoin5": benchQueries["MultiJoin5"],
		"valuejoin":  benchQueries["ValueJoin"],
		"self-loop":  "q(X) :- t(X, " + datagen.PropName(0) + ", X)",
	}
	flat, sharded, dual := diffStores(t)
	for layout, st := range map[string]*store.Store{"flat": flat, "4-shard": sharded, "4x4-dual": dual} {
		p := cq.NewParser(st.Dict())
		for name, src := range shapes {
			q := p.MustParseQuery(src)
			p.ResetNames()
			plan, err := PlanQuery(st, q)
			if err != nil {
				t.Fatalf("%s/%s: plan: %v", layout, name, err)
			}
			rows, err := plan.EvalWithOptions(ExecOptions{Vectorized: VecOff})
			if err != nil {
				t.Fatalf("%s/%s: row oracle: %v", layout, name, err)
			}
			vec, err := plan.EvalWithOptions(ExecOptions{})
			if err != nil {
				t.Fatalf("%s/%s: vectorized: %v", layout, name, err)
			}
			if name == "self-loop" && rows.Len() == 0 {
				t.Fatalf("%s/self-loop: fixture lost its self edges", layout)
			}
			sameRows(t, layout+"/"+name, rows, vec)
		}
	}
}

// TestVectorizedExecuteMatchesRows is the rewriting-executor matrix: the same
// nine plan shapes as the serial-vs-parallel differential, run row-vs-batch
// at DOP 1, 2 and 4, multiset-exact.
func TestVectorizedExecuteMatchesRows(t *testing.T) {
	forceParallelRewrite(t)
	rng := rand.New(rand.NewSource(19))
	x1, x2, x3, x4 := cq.Var(1), cq.Var(2), cq.Var(3), cq.Var(4)
	views := map[algebra.ViewID]*Relation{
		1: randomExtent(rng, []cq.Term{x1, x2}, 900, 140),
		2: randomExtent(rng, []cq.Term{x2, x3}, 700, 140),
		3: randomExtent(rng, []cq.Term{x1, x2}, 400, 140),
		4: randomExtent(rng, []cq.Term{x3, x4}, 500, 140),
	}
	s1 := func() *algebra.Scan { return algebra.NewScan(1, []cq.Term{x1, x2}) }
	s2 := func() *algebra.Scan { return algebra.NewScan(2, []cq.Term{x2, x3}) }
	s3 := func() *algebra.Scan { return algebra.NewScan(3, []cq.Term{x1, x2}) }
	s4 := func() *algebra.Scan { return algebra.NewScan(4, []cq.Term{x3, x4}) }
	c := views[1].Rows[0][0]

	plans := map[string]algebra.Plan{
		"join":          algebra.NewJoin(s1(), s2()),
		"join-flipped":  algebra.NewJoin(s2(), s1()),
		"join-cond":     algebra.NewJoin(s1(), algebra.NewScan(4, []cq.Term{x3, x4}), algebra.Cond{Left: x2, Right: x3}),
		"deep-join":     algebra.NewJoin(algebra.NewJoin(s1(), s2()), s4()),
		"filter-join":   algebra.NewJoin(algebra.NewSelect(s1(), algebra.Cond{Left: x1, Right: cq.Const(c)}), s2()),
		"project":       algebra.NewProject(algebra.NewSelect(s1(), algebra.Cond{Left: x1, Right: x2}), []cq.Term{x2}),
		"union":         algebra.NewUnion(s1(), s3()),
		"union-of-join": algebra.NewUnion(algebra.NewJoin(s1(), s2()), algebra.NewJoin(s3(), s2()), algebra.NewJoin(s1(), s2())),
		"project-union": algebra.NewProject(algebra.NewUnion(algebra.NewJoin(s1(), s2()), algebra.NewJoin(s3(), s2())), []cq.Term{x1, x3}),
	}
	for name, plan := range plans {
		for _, dop := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s dop=%d", name, dop)
			rows, err := ExecuteWithOptions(plan, MapResolver(views), ExecOptions{DOP: dop, Vectorized: VecOff})
			if err != nil {
				t.Fatalf("%s: row oracle: %v", label, err)
			}
			vec, err := ExecuteWithOptions(plan, MapResolver(views), ExecOptions{DOP: dop})
			if err != nil {
				t.Fatalf("%s: vectorized: %v", label, err)
			}
			sameRows(t, label, rows, vec)
		}
	}
}

// TestVectorizedAbandonedPipeline closes partially drained vectorized
// pipelines — serial and parallel, both executors — and checks every worker
// is released (the race detector and goroutine scheduler catch leaks).
func TestVectorizedAbandonedPipeline(t *testing.T) {
	forceParallelRewrite(t)
	rng := rand.New(rand.NewSource(23))
	x1, x2, x3 := cq.Var(1), cq.Var(2), cq.Var(3)
	views := map[algebra.ViewID]*Relation{
		1: randomExtent(rng, []cq.Term{x1, x2}, 2000, 50),
		2: randomExtent(rng, []cq.Term{x2, x3}, 2000, 50),
	}
	plan := algebra.NewUnion(
		algebra.NewJoin(algebra.NewScan(1, []cq.Term{x1, x2}), algebra.NewScan(2, []cq.Term{x2, x3})),
		algebra.NewJoin(algebra.NewScan(1, []cq.Term{x1, x2}), algebra.NewScan(2, []cq.Term{x2, x3})),
	)
	root, _, err := compileVecRel(plan, MapResolver(views), ExecOptions{DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := root.nextBatch(); !ok {
		t.Fatal("no first batch")
	}
	closeVop(root)
	closeVop(root) // closing twice is safe

	// Store-side: abandon a sharded vectorized scan mid-stream.
	oldMin := parallelScanMinRows
	parallelScanMinRows = 0
	defer func() { parallelScanMinRows = oldMin }()
	_, sharded, _ := diffStores(t)
	q := cq.NewParser(sharded.Dict()).MustParseQuery("q(X, P, Y) :- t(X, P, Y)")
	qp, err := PlanQuery(sharded, q)
	if err != nil {
		t.Fatal(err)
	}
	vroot := qp.buildVecOps(nil)
	if _, ok := vroot.nextBatch(); !ok {
		t.Fatal("no first batch from sharded scan")
	}
	closeVop(vroot)
	closeVop(vroot)
}
