package engine

import (
	"sync"

	"rdfviews/internal/cq"
)

// Parallel rewriting execution over view extents: the answering-tier
// counterpart of the store-side exchange operators in parallel.go. Three
// shapes exist, all selected by ExecOptions.DOP at compile time and all
// producing exactly the serial operators' row sets:
//
//   - relExchangeOp fans a set of independent substreams (range-split
//     view-extent scans, filters over them, or whole union branches) out over
//     worker goroutines that drain them into arena-copied batches on one
//     shared channel — the rewriting-side mirror of exchangeOp;
//   - parallelUnionOp evaluates union branches concurrently through a
//     relExchangeOp and deduplicates at the consumer against one shared
//     rowSet sized from the branches' resolved cardinalities;
//   - parallelHashJoinRelOp partitions its build extent by key hash into DOP
//     partitions whose hash tables are built concurrently, then fans the
//     probe stream out over worker goroutines (independent range substreams
//     when the probe side splits, a single drainer otherwise) that probe the
//     read-only partitions and emit joined rows in batches.
//
// Workers run to completion when the plan is drained; close() (deferred by
// ExecuteWithOptions) releases them early if the pipeline is abandoned.

// execBatchRows is the number of rows a rewriting worker accumulates before
// handing a batch to the consumer; batch rows are arena copies owned by the
// consumer.
const execBatchRows = 256

// closeRel releases any parallel workers below a rewriting operator; safe on
// operators without goroutines. Serial composite operators propagate the
// close to their inputs.
func closeRel(o rop) {
	if c, ok := o.(interface{ close() }); ok {
		c.close()
	}
}

// splitRel splits an operator into independent substreams for parallel
// draining, or nil when the operator does not support splitting (dedup and
// join operators must see their whole stream).
func splitRel(o rop, parts int) []rop {
	if parts <= 1 {
		return nil
	}
	if s, ok := o.(interface{ split(int) []rop }); ok {
		return s.split(parts)
	}
	return nil
}

// relExchangeOp drains independent source streams on up to workers worker
// goroutines, all feeding one channel of arena-copied row batches; batches
// surface in whatever order workers produce them (rewriting output order is
// immaterial under set semantics).
type relExchangeOp struct {
	labels  []cq.Term
	sources []rop
	workers int

	started bool
	closed  bool
	done    chan struct{}
	ch      chan []Row
	batch   []Row
	i       int
}

func newRelExchange(cols []cq.Term, sources []rop, workers int) *relExchangeOp {
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}
	return &relExchangeOp{labels: cols, sources: sources, workers: workers}
}

func (e *relExchangeOp) cols() []cq.Term  { return e.labels }
func (e *relExchangeOp) stableRows() bool { return true }

func (e *relExchangeOp) start() {
	e.done = make(chan struct{})
	e.ch = make(chan []Row, e.workers)
	idx := make(chan int, len(e.sources))
	for i := range e.sources {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if !drainRelTo(e.sources[i], e.ch, e.done) {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(e.ch)
	}()
	e.started = true
}

func (e *relExchangeOp) next() (Row, bool) {
	if !e.started {
		e.start()
	}
	for {
		if e.i < len(e.batch) {
			row := e.batch[e.i]
			e.i++
			return row, true
		}
		batch, ok := <-e.ch
		if !ok {
			return nil, false
		}
		e.batch, e.i = batch, 0
	}
}

func (e *relExchangeOp) close() {
	if e.started && !e.closed {
		close(e.done)
		for range e.ch { // unblock any worker parked on send
		}
	}
	e.closed = true
	for _, s := range e.sources {
		closeRel(s)
	}
}

// drainRelTo streams one operator's rows into out in batches, stopping early
// when done closes; it reports whether the source was fully drained. Rows
// from stable sources are forwarded as-is (they are never overwritten, so
// consumers own them already); unstable sources' reused buffers are
// arena-copied first. Either way, sent rows are private to the consumer.
func drainRelTo(src rop, out chan<- []Row, done <-chan struct{}) bool {
	var batch []Row
	var arena rowArena
	stable := src.stableRows()
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case out <- batch:
			batch = nil
			return true
		case <-done:
			return false
		}
	}
	for {
		row, ok := src.next()
		if !ok {
			break
		}
		if !stable {
			row = arena.copyRow(row)
		}
		batch = append(batch, row)
		if len(batch) == execBatchRows {
			if !flush() {
				return false
			}
		}
	}
	return flush()
}

// parallelUnionOp evaluates union branches concurrently (up to DOP at a
// time) and deduplicates at the consumer: branch workers feed one exchange
// channel, and every arriving row is tested against a single shared rowSet —
// rows are private arena copies, so the set keeps references without
// copying again.
type parallelUnionOp struct {
	ex   *relExchangeOp
	seen *rowSet
}

func newParallelUnion(branches []rop, sizeHint, dop int) *parallelUnionOp {
	return &parallelUnionOp{
		ex:   newRelExchange(branches[0].cols(), branches, dop),
		seen: newRowSet(sizeHint),
	}
}

func (u *parallelUnionOp) cols() []cq.Term  { return u.ex.cols() }
func (u *parallelUnionOp) stableRows() bool { return true }
func (u *parallelUnionOp) close()           { u.ex.close() }

func (u *parallelUnionOp) next() (Row, bool) {
	for {
		row, ok := u.ex.next()
		if !ok {
			return nil, false
		}
		if u.seen.add(row) {
			return row, true
		}
	}
}

// joinPartition is one key-hash partition of a parallel hash join's build
// side: the same idTable + chain scheme hashJoinRelOp uses, immutable once
// built, so probe workers read it without locks.
type joinPartition struct {
	table  *idTable
	rows   []Row
	hashes []uint64
	chains []int32
}

// parallelHashJoinRelOp is the partitioned parallel hash join over view
// extents. The build side is drained once and scattered into dop partitions
// by key hash; partition tables build concurrently; probe workers then fan
// out (one per split probe substream) and probe the partition their row's
// key hash owns, emitting assembled output rows in batches. The empty-probe
// fast path of hashJoinRelOp is preserved: one probe row is peeked before
// the build, and a zero-row probe skips the build entirely.
type parallelHashJoinRelOp struct {
	left, right rop
	shape       joinShapeInfo
	lIdx, rIdx  []int
	buildLeft   bool
	dop         int
	leftWidth   int

	started bool
	closed  bool
	done    chan struct{}
	ch      chan []Row
	parts   []joinPartition
	batch   []Row
	i       int
}

func newParallelHashJoin(left, right rop, shape joinShapeInfo, lIdx, rIdx []int, buildLeft bool, dop int) *parallelHashJoinRelOp {
	return &parallelHashJoinRelOp{left: left, right: right, shape: shape, lIdx: lIdx, rIdx: rIdx,
		buildLeft: buildLeft, dop: dop, leftWidth: len(left.cols())}
}

func (j *parallelHashJoinRelOp) cols() []cq.Term  { return j.shape.outCols }
func (j *parallelHashJoinRelOp) stableRows() bool { return true }

func (j *parallelHashJoinRelOp) start() {
	j.started = true
	j.done = make(chan struct{})
	j.ch = make(chan []Row, j.dop)
	build, bIdx := j.right, j.rIdx
	probe, pIdx := j.left, j.lIdx
	if j.buildLeft {
		build, bIdx, probe, pIdx = j.left, j.lIdx, j.right, j.rIdx
	}
	streams, any := splitProbeStreams(probe, j.dop)
	if !any {
		close(j.ch) // empty probe: the join is empty, never drain the build
		return
	}
	j.buildPartitions(build, bIdx)
	var wg sync.WaitGroup
	for _, s := range streams {
		wg.Add(1)
		go func(s rop) {
			defer wg.Done()
			j.probeStream(s, pIdx)
		}(s)
	}
	go func() {
		wg.Wait()
		close(j.ch)
	}()
}

// splitProbeStreams splits the probe side into independent substreams when it
// supports splitting (view-extent scans and filters over them; one stream
// otherwise) and peeks for a first probe row across them: when every stream
// is empty the caller skips the build entirely. The peeked row is pushed
// back onto its stream; streams peeked to EOF stay in the set — operators
// keep reporting EOF after exhaustion.
func splitProbeStreams(probe rop, parts int) ([]rop, bool) {
	streams := splitRel(probe, parts)
	if streams == nil {
		streams = []rop{probe}
	}
	for i := range streams {
		row, ok := streams[i].next()
		if !ok {
			continue
		}
		streams[i] = &pushbackRel{in: streams[i], row: append(Row(nil), row...), have: true}
		return streams, true
	}
	return nil, false
}

// pushbackRel replays one peeked row (a private copy) before the rest of its
// input's stream.
type pushbackRel struct {
	in   rop
	row  Row
	have bool
}

func (p *pushbackRel) cols() []cq.Term  { return p.in.cols() }
func (p *pushbackRel) stableRows() bool { return p.in.stableRows() }
func (p *pushbackRel) close()           { closeRel(p.in) }

func (p *pushbackRel) next() (Row, bool) {
	if p.have {
		p.have = false
		return p.row, true
	}
	return p.in.next()
}

// buildPartitions drains the build side once, scattering arena-copied rows
// into dop key-hash partitions, then builds the partition hash tables
// concurrently (one goroutine per partition).
func (j *parallelHashJoinRelOp) buildPartitions(build rop, bIdx []int) {
	j.parts = make([]joinPartition, j.dop)
	var arena rowArena
	for {
		row, ok := build.next()
		if !ok {
			break
		}
		h := hashValues(row, bIdx)
		p := &j.parts[h%uint64(j.dop)]
		p.rows = append(p.rows, arena.copyRow(row))
		p.hashes = append(p.hashes, h)
	}
	var wg sync.WaitGroup
	for i := range j.parts {
		part := &j.parts[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			part.table = newIDTable(len(part.rows))
			part.chains = make([]int32, len(part.rows))
			for r, h := range part.hashes {
				part.chains[r] = part.table.get(h)
				part.table.put(h, int32(r+1))
			}
		}()
	}
	wg.Wait()
}

// probeStream drains one probe substream against the partitioned build,
// emitting assembled output rows (left values, then kept right values) in
// batches on the shared channel.
func (j *parallelHashJoinRelOp) probeStream(s rop, pIdx []int) {
	var batch []Row
	var arena rowArena
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case j.ch <- batch:
			batch = nil
			return true
		case <-j.done:
			return false
		}
	}
	for {
		prow, ok := s.next()
		if !ok {
			break
		}
		h := hashValues(prow, pIdx)
		part := &j.parts[h%uint64(j.dop)]
		for c := part.table.get(h); c != 0; c = part.chains[c-1] {
			brow := part.rows[c-1]
			if !j.shape.matchKeys(prow, brow, j.buildLeft) {
				continue
			}
			out := arena.alloc(len(j.shape.outCols))
			j.shape.assemble(out, prow, brow, j.buildLeft, j.leftWidth)
			batch = append(batch, out)
			if len(batch) == execBatchRows {
				if !flush() {
					return
				}
			}
		}
	}
	flush()
}

func (j *parallelHashJoinRelOp) next() (Row, bool) {
	if !j.started {
		j.start()
	}
	for {
		if j.i < len(j.batch) {
			row := j.batch[j.i]
			j.i++
			return row, true
		}
		batch, ok := <-j.ch
		if !ok {
			return nil, false
		}
		j.batch, j.i = batch, 0
	}
}

func (j *parallelHashJoinRelOp) close() {
	if j.started && !j.closed {
		close(j.done)
		for range j.ch { // unblock any worker parked on send
		}
	}
	j.closed = true
	closeRel(j.left)
	closeRel(j.right)
}
