package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
	"rdfviews/internal/datagen"
	"rdfviews/internal/store"
)

// drainStream collects a stream into a relation (copying each slab, since
// slabs are only valid until the next pull), failing the test on error.
func drainStream(t *testing.T, label string, s *RowStream) *Relation {
	t.Helper()
	defer s.Close()
	out := NewRelation(s.Cols())
	for {
		rows, err := s.Next()
		if err != nil {
			t.Fatalf("%s: stream: %v", label, err)
		}
		if rows == nil {
			return out
		}
		if len(rows) == 0 {
			t.Fatalf("%s: stream delivered an empty slab", label)
		}
		for _, r := range rows {
			out.Rows = append(out.Rows, append(Row(nil), r...))
		}
	}
}

// TestEvalStreamMatchesEval checks the streaming store-side drain against the
// materializing one on the standard nine shapes over flat and 4-shard stores:
// same multiset, distinct or not, serial or exchange-parallel.
func TestEvalStreamMatchesEval(t *testing.T) {
	oldMin := parallelScanMinRows
	parallelScanMinRows = 0
	defer func() { parallelScanMinRows = oldMin }()

	shapes := map[string]string{
		"full-scan":  "q(X, P, Y) :- t(X, P, Y)",
		"pred-scan":  "q(X, Y) :- t(X, " + datagen.PropName(0) + ", Y)",
		"chain3":     benchQueries["Chain3"],
		"chain4":     benchQueries["Chain4"],
		"star3":      benchQueries["Star3"],
		"star4":      benchQueries["Star4"],
		"multijoin5": benchQueries["MultiJoin5"],
		"valuejoin":  benchQueries["ValueJoin"],
		"self-loop":  "q(X) :- t(X, " + datagen.PropName(0) + ", X)",
	}
	flat, sharded, dual := diffStores(t)
	for layout, st := range map[string]*store.Store{"flat": flat, "4-shard": sharded, "4x4-dual": dual} {
		p := cq.NewParser(st.Dict())
		for name, src := range shapes {
			q := p.MustParseQuery(src)
			p.ResetNames()
			plan, err := PlanQuery(st, q)
			if err != nil {
				t.Fatalf("%s/%s: plan: %v", layout, name, err)
			}
			want, err := plan.Eval()
			if err != nil {
				t.Fatalf("%s/%s: eval: %v", layout, name, err)
			}
			got := drainStream(t, layout+"/"+name, plan.EvalStream(ExecOptions{Ctx: context.Background()}))
			sameRows(t, layout+"/"+name+" streamed", want, got)
		}
	}
}

// TestExecuteStreamMatchesExecute checks the streaming rewriting drain against
// the materializing executor on the plan-shape matrix, serial and parallel.
func TestExecuteStreamMatchesExecute(t *testing.T) {
	forceParallelRewrite(t)
	rng := rand.New(rand.NewSource(19))
	x1, x2, x3, x4 := cq.Var(1), cq.Var(2), cq.Var(3), cq.Var(4)
	views := map[algebra.ViewID]*Relation{
		1: randomExtent(rng, []cq.Term{x1, x2}, 900, 140),
		2: randomExtent(rng, []cq.Term{x2, x3}, 700, 140),
		3: randomExtent(rng, []cq.Term{x1, x2}, 400, 140),
		4: randomExtent(rng, []cq.Term{x3, x4}, 500, 140),
	}
	s1 := func() *algebra.Scan { return algebra.NewScan(1, []cq.Term{x1, x2}) }
	s2 := func() *algebra.Scan { return algebra.NewScan(2, []cq.Term{x2, x3}) }
	s3 := func() *algebra.Scan { return algebra.NewScan(3, []cq.Term{x1, x2}) }
	s4 := func() *algebra.Scan { return algebra.NewScan(4, []cq.Term{x3, x4}) }
	c := views[1].Rows[0][0]
	plans := map[string]algebra.Plan{
		"join":          algebra.NewJoin(s1(), s2()),
		"join-cond":     algebra.NewJoin(s1(), s4(), algebra.Cond{Left: x2, Right: x3}),
		"deep-join":     algebra.NewJoin(algebra.NewJoin(s1(), s2()), s4()),
		"filter-join":   algebra.NewJoin(algebra.NewSelect(s1(), algebra.Cond{Left: x1, Right: cq.Const(c)}), s2()),
		"project":       algebra.NewProject(algebra.NewSelect(s1(), algebra.Cond{Left: x1, Right: x2}), []cq.Term{x2}),
		"union":         algebra.NewUnion(s1(), s3()),
		"project-union": algebra.NewProject(algebra.NewUnion(algebra.NewJoin(s1(), s2()), algebra.NewJoin(s3(), s2())), []cq.Term{x1, x3}),
	}
	for name, plan := range plans {
		for _, dop := range []int{1, 4} {
			label := fmt.Sprintf("%s dop=%d", name, dop)
			want, err := ExecuteWithOptions(plan, MapResolver(views), ExecOptions{DOP: dop})
			if err != nil {
				t.Fatalf("%s: execute: %v", label, err)
			}
			s, err := ExecuteStream(plan, MapResolver(views), ExecOptions{DOP: dop, Ctx: context.Background()})
			if err != nil {
				t.Fatalf("%s: stream compile: %v", label, err)
			}
			sameRows(t, label+" streamed", want, drainStream(t, label, s))
		}
	}
}

// TestUnionProjectStreams covers the serving tier's stream combinators:
// cross-member dedup in UnionStreams and column permutation in ProjectStream.
func TestUnionProjectStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x1, x2 := cq.Var(1), cq.Var(2)
	views := map[algebra.ViewID]*Relation{
		1: randomExtent(rng, []cq.Term{x1, x2}, 600, 60),
		2: randomExtent(rng, []cq.Term{x1, x2}, 600, 60),
	}
	scan := func(id algebra.ViewID) algebra.Plan {
		return algebra.NewProject(algebra.NewScan(id, []cq.Term{x1, x2}), []cq.Term{x1, x2})
	}
	want, err := Execute(algebra.NewUnion(scan(1), scan(2)), MapResolver(views))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id algebra.ViewID) *RowStream {
		s, err := ExecuteStream(scan(id), MapResolver(views), ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	u, err := UnionStreams([]*RowStream{mk(1), mk(2)}, 64)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "union streams", want, drainStream(t, "union", u))

	// Permuting an already-distinct stream preserves the row count and moves
	// the columns.
	p, err := ProjectStream(mk(1), []cq.Term{x2, x1})
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, "project", p)
	wantPerm, err := views[1].Project([]cq.Term{x2, x1})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "project stream", wantPerm, got)

	if _, err := ProjectStream(mk(1), []cq.Term{cq.Var(9)}); err == nil {
		t.Fatal("projection onto an unknown column should fail")
	}
}

// TestExecCancelContext checks that a canceled context aborts every drain —
// materializing and streaming, store-side and rewriting — with ctx.Err(), and
// that the engine's cancellation checkpoints register the stop.
func TestExecCancelContext(t *testing.T) {
	flat, _, _ := diffStores(t)
	p := cq.NewParser(flat.Dict())
	q := p.MustParseQuery("q(X, P, Y) :- t(X, P, Y)")
	plan, err := PlanQuery(flat, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before execution starts

	before := CancelStops()
	if _, err := plan.EvalWithOptions(ExecOptions{Ctx: ctx}); err != context.Canceled {
		t.Fatalf("eval under canceled ctx: got %v, want context.Canceled", err)
	}
	if _, err := plan.EvalWithOptions(ExecOptions{Ctx: ctx, Vectorized: VecOff}); err != context.Canceled {
		t.Fatalf("row-mode eval under canceled ctx: got %v, want context.Canceled", err)
	}
	if CancelStops() <= before {
		t.Fatal("cancellation checkpoints did not register the stop")
	}

	rng := rand.New(rand.NewSource(3))
	x1, x2 := cq.Var(1), cq.Var(2)
	views := map[algebra.ViewID]*Relation{1: randomExtent(rng, []cq.Term{x1, x2}, 5000, 100)}
	rp := algebra.NewProject(algebra.NewScan(1, []cq.Term{x1, x2}), []cq.Term{x1, x2})
	if _, err := ExecuteWithOptions(rp, MapResolver(views), ExecOptions{Ctx: ctx}); err != context.Canceled {
		t.Fatalf("rewriting execute under canceled ctx: got %v, want context.Canceled", err)
	}

	// Mid-stream cancellation: pull one slab, cancel, and the stream must
	// terminate with the context error instead of running to completion.
	ctx2, cancel2 := context.WithCancel(context.Background())
	s := plan.EvalStream(ExecOptions{Ctx: ctx2})
	if _, err := s.Next(); err != nil {
		t.Fatalf("first slab: %v", err)
	}
	cancel2()
	for {
		rows, err := s.Next()
		if err == context.Canceled {
			break
		}
		if rows == nil {
			t.Fatal("stream hit EOF without surfacing the canceled context")
		}
	}
	s.Close()
}
