// Package plancache is the serving tier's compiled-artifact cache: a sharded
// LRU keyed by canonicalized query codes (internal/cq.CanonicalCode — built
// for exactly this) holding whatever the answering paths find expensive to
// rebuild per call: reformulated UCQs, chosen rewritings, compiled physical
// plans, cardinality snapshots.
//
// Three properties carry the serving load:
//
//   - Singleflight compilation: N concurrent misses on one key run the
//     compile callback once; the rest wait on the flight and share its
//     result. A thundering herd on a cold popular query costs one
//     reformulate/rewrite/plan, not N.
//   - Generation invalidation: Invalidate bumps a cache-wide generation and
//     every existing entry becomes lazily stale — the next lookup recompiles
//     in place. No sweep, no pause.
//   - Per-entry validity: lookups pass a validity callback (cardinality-drift
//     checks, epoch pins); a cached artifact that fails it is recompiled
//     under the same singleflight discipline.
//
// Hit/miss/eviction/compile-time counters land in a stats.CacheCounters
// ledger shared with the CLI's -cache-stats surface and, eventually, the
// adaptive view-selection phase.
package plancache

import (
	"sync"
	"sync/atomic"
	"time"

	"rdfviews/internal/stats"
)

// numShards spreads keys over independently locked LRU segments so
// concurrent answerers on different queries never contend. Power of two.
const numShards = 16

// DefaultCapacity is the cache-wide entry budget used when New is given a
// non-positive capacity.
const DefaultCapacity = 256

// Cache is a concurrent, sharded LRU from canonical query codes to compiled
// artifacts. The zero value is not usable; construct with New.
type Cache struct {
	ctr         *stats.CacheCounters
	gen         atomic.Uint64
	capPerShard int
	shards      [numShards]shard
}

type shard struct {
	mu         sync.Mutex
	entries    map[string]*entry
	head, tail *entry             // LRU order: head = most recently used
	flights    map[string]*flight // in-progress compiles, keyed like entries
}

type entry struct {
	key        string
	val        any
	gen        uint64        // cache generation the artifact was compiled under
	cost       time.Duration // compile time, credited to SavedNanos per hit
	prev, next *entry
}

// flight is one in-progress compile; waiters block on done and read val/err.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a cache holding up to capacity entries across all shards
// (non-positive capacity selects DefaultCapacity). Counters may be nil, in
// which case a private ledger is allocated; pass a shared one to aggregate
// several caches into a single -cache-stats report.
func New(capacity int, ctr *stats.CacheCounters) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if ctr == nil {
		ctr = &stats.CacheCounters{}
	}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{ctr: ctr, capPerShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].flights = make(map[string]*flight)
	}
	return c
}

// Counters returns the cache's ledger.
func (c *Cache) Counters() *stats.CacheCounters { return c.ctr }

// Generation returns the current invalidation generation.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// Invalidate bumps the generation: every cached entry becomes stale and will
// be recompiled on its next lookup. Entries are discarded lazily.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	c.ctr.Invalidations.Add(1)
}

// Len returns the number of resident entries (stale ones included until
// their next lookup or eviction).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Do returns the artifact for key, compiling it if absent, stale (generation
// mismatch), or rejected by valid. hit reports whether a cached artifact was
// returned without running compile or waiting on another caller's compile.
//
// valid runs under the shard lock — it must be quick and must not reenter
// the cache. nil means always valid. Errors are not cached: every waiter on
// a failed flight gets the error, and the next lookup retries.
func (c *Cache) Do(key string, valid func(any) bool, compile func() (any, error)) (v any, hit bool, err error) {
	sh := &c.shards[shardIndex(key)]
	cg := c.gen.Load()

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok && e.gen == cg && (valid == nil || valid(e.val)) {
		sh.moveFront(e)
		cost := e.cost
		v = e.val
		sh.mu.Unlock()
		c.ctr.Hits.Add(1)
		c.ctr.SavedNanos.Add(int64(cost))
		return v, true, nil
	}
	if f, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		<-f.done
		c.ctr.Misses.Add(1)
		return f.val, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()

	t0 := time.Now()
	v, err = compile()
	dt := time.Since(t0)
	f.val, f.err = v, err

	sh.mu.Lock()
	delete(sh.flights, key)
	if err == nil {
		// Insert under the generation read before compiling: an Invalidate
		// racing the compile leaves the fresh entry already stale, never a
		// stale artifact tagged current.
		if e, ok := sh.entries[key]; ok {
			e.val, e.gen, e.cost = v, cg, dt
			sh.moveFront(e)
		} else {
			e := &entry{key: key, val: v, gen: cg, cost: dt}
			sh.entries[key] = e
			sh.pushFront(e)
			for len(sh.entries) > c.capPerShard {
				ev := sh.tail
				sh.unlink(ev)
				delete(sh.entries, ev.key)
				c.ctr.Evictions.Add(1)
			}
		}
	}
	sh.mu.Unlock()
	close(f.done)

	c.ctr.Misses.Add(1)
	c.ctr.CompileNanos.Add(int64(dt))
	return v, false, err
}

// Get returns the artifact for key without compiling, applying the same
// generation and validity checks as Do. It does not touch the counters.
func (c *Cache) Get(key string, valid func(any) bool) (any, bool) {
	sh := &c.shards[shardIndex(key)]
	cg := c.gen.Load()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok && e.gen == cg && (valid == nil || valid(e.val)) {
		sh.moveFront(e)
		return e.val, true
	}
	return nil, false
}

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// shardIndex hashes the key (FNV-1a) onto a shard.
func shardIndex(key string) int {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h & (numShards - 1))
}
