package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitMiss(t *testing.T) {
	c := New(64, nil)
	compiles := 0
	compile := func() (any, error) { compiles++; return "artifact", nil }

	v, hit, err := c.Do("k", nil, compile)
	if err != nil || hit || v != "artifact" {
		t.Fatalf("first Do: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do("k", nil, compile)
	if err != nil || !hit || v != "artifact" {
		t.Fatalf("second Do: v=%v hit=%v err=%v", v, hit, err)
	}
	if compiles != 1 {
		t.Fatalf("compiles = %d, want 1", compiles)
	}
	s := c.Counters().Snapshot()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("counters = %+v, want 1 hit 1 miss", s)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := New(64, nil)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", nil, func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do("k", nil, func() (any, error) { calls++; return 7, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("retry: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (errors must not be cached)", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New(64, nil)
	compiles := 0
	compile := func() (any, error) { compiles++; return compiles, nil }
	c.Do("k", nil, compile)
	c.Invalidate()
	v, hit, _ := c.Do("k", nil, compile)
	if hit || v != 2 {
		t.Fatalf("post-invalidate Do: v=%v hit=%v, want recompile", v, hit)
	}
	if got := c.Counters().Snapshot().Invalidations; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
}

func TestCacheValidityCallback(t *testing.T) {
	c := New(64, nil)
	compiles := 0
	compile := func() (any, error) { compiles++; return compiles, nil }
	ok := func(any) bool { return true }
	bad := func(any) bool { return false }

	c.Do("k", ok, compile)
	if v, hit, _ := c.Do("k", ok, compile); !hit || v != 1 {
		t.Fatalf("valid hit: v=%v hit=%v", v, hit)
	}
	if v, hit, _ := c.Do("k", bad, compile); hit || v != 2 {
		t.Fatalf("invalid entry must recompile: v=%v hit=%v", v, hit)
	}
	// The replacement is valid again.
	if v, hit, _ := c.Do("k", ok, compile); !hit || v != 2 {
		t.Fatalf("replacement hit: v=%v hit=%v", v, hit)
	}
}

func TestCacheLRUCapacity(t *testing.T) {
	const capacity = 32
	c := New(capacity, nil)
	for i := 0; i < 10*capacity; i++ {
		key := fmt.Sprintf("key-%d", i)
		c.Do(key, nil, func() (any, error) { return i, nil })
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("Len = %d, want <= %d", n, capacity)
	}
	s := c.Counters().Snapshot()
	if s.Evictions == 0 {
		t.Fatalf("no evictions after %d inserts into capacity %d", 10*capacity, capacity)
	}
	if s.Evictions+int64(c.Len()) != s.Misses {
		t.Fatalf("evictions(%d) + resident(%d) != inserts(%d)", s.Evictions, c.Len(), s.Misses)
	}
}

func TestCacheLRURecency(t *testing.T) {
	// One entry per shard: any second distinct key on the same shard evicts
	// the colder one. Re-touching the first key keeps it resident over an
	// untouched middle key.
	c := New(numShards, nil)
	var keys []string
	sh := -1
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if sh == -1 {
			sh = shardIndex(k)
		}
		if shardIndex(k) == sh {
			keys = append(keys, k)
		}
	}
	c.Do(keys[0], nil, func() (any, error) { return 0, nil })
	c.Do(keys[1], nil, func() (any, error) { return 1, nil }) // evicts keys[0]? no: cap 1 -> yes
	// capPerShard is 1 here, so keys[1] evicted keys[0]; touch and verify.
	if _, hit := c.Get(keys[1], nil); !hit {
		t.Fatalf("most recent key evicted")
	}
	if _, hit := c.Get(keys[0], nil); hit {
		t.Fatalf("cold key survived past capacity")
	}
}

func TestCacheSingleflightConcurrent(t *testing.T) {
	c := New(64, nil)
	const n = 32
	var compiles atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			<-started
			v, _, err := c.Do("hot", nil, func() (any, error) {
				compiles.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return "plan", nil
			})
			if err != nil || v != "plan" {
				t.Errorf("Do: v=%v err=%v", v, err)
			}
		}()
	}
	close(started)
	wg.Wait()
	// All callers that found the flight in progress shared one compile. A
	// caller arriving after the flight closed hits the cache instead.
	if got := compiles.Load(); got != 1 {
		t.Fatalf("compiles = %d, want 1 (singleflight)", got)
	}
}

func TestCacheConcurrentChurn(t *testing.T) {
	// Mixed Do/Invalidate/Get churn across goroutines; correctness is "no
	// race, no lost update, values always well-formed" under -race.
	c := New(16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("q-%d", (g+i)%24)
				v, _, err := c.Do(key, func(v any) bool { return v.(string) != "" }, func() (any, error) {
					return "plan:" + key, nil
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if v.(string) != "plan:"+key {
					t.Errorf("wrong artifact for %s: %v", key, v)
					return
				}
				if i%97 == 0 {
					c.Invalidate()
				}
				if i%13 == 0 {
					c.Get(key, nil)
				}
			}
		}(g)
	}
	wg.Wait()
}
