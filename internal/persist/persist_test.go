package persist

import (
	"bytes"
	"testing"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
	"rdfviews/internal/engine"
	"rdfviews/internal/rdf"
	"rdfviews/internal/store"
)

func TestDatabaseImageRoundTrip(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse(`
u1 hasPainted starryNight .
u2 name "Vincent" .
_:b knows u1 .
`))
	schema := rdf.NewSchema()
	schema.AddSubClass("painting", "picture")
	schema.AddDomain("hasPainted", "painter")

	var buf bytes.Buffer
	if err := SaveDatabase(&buf, st, schema); err != nil {
		t.Fatal(err)
	}
	st2, schema2, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples %d != %d", st2.Len(), st.Len())
	}
	for _, tr := range st.Triples() {
		if !st2.Contains(tr) {
			t.Errorf("missing triple %v", tr)
		}
	}
	if schema2.Len() != schema.Len() {
		t.Fatalf("schema %d != %d", schema2.Len(), schema.Len())
	}
	// Dictionary IDs are preserved: same terms decode identically.
	for _, id := range st.Dict().SortedIDs() {
		a := st.Dict().MustDecode(id)
		b := st2.Dict().MustDecode(id)
		if a != b {
			t.Fatalf("ID %d decodes differently: %v vs %v", id, a, b)
		}
	}
}

func TestSaveDatabaseNilSchema(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse("a p b ."))
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, st, nil); err != nil {
		t.Fatal(err)
	}
	_, schema, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 0 {
		t.Error("nil schema should load empty")
	}
}

func TestBundleRoundTripAllPlanNodes(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse(`
u1 hasPainted starryNight .
u1 isParentOf u2 .
u2 hasPainted irises .
`))
	p := cq.NewParser(st.Dict())
	v1 := p.MustParseQuery("q(X, Y) :- t(X, hasPainted, Y)")
	p.ResetNames()
	v2 := p.MustParseQuery("q(X, Y) :- t(X, isParentOf, Y)")
	views := map[algebra.ViewID]*cq.Query{1: v1, 2: v2}
	extents := map[algebra.ViewID]*engine.Relation{}
	for id, v := range views {
		rel, err := engine.Materialize(st, v)
		if err != nil {
			t.Fatal(err)
		}
		extents[id] = rel
	}
	x, y, z := v1.Head[0], v1.Head[1], v2.Head[1]
	// A plan exercising every node type.
	plan := algebra.NewProject(
		algebra.NewSelect(
			algebra.NewJoin(
				algebra.NewScan(2, []cq.Term{x, z}),
				algebra.NewUnion(
					algebra.NewScan(1, []cq.Term{z, y}),
					algebra.NewScan(1, []cq.Term{z, y}),
				),
			),
			algebra.Cond{Left: x, Right: x},
		),
		[]cq.Term{x, y},
	)
	queries := []*cq.Query{{Head: []cq.Term{x, y}, Atoms: v1.Atoms}}
	b, err := NewBundle(st.Dict(), queries, []algebra.Plan{plan}, views, extents)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.Answer(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Answer(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("bundle answers changed across roundtrip: %d vs %d rows", got.Len(), want.Len())
	}
	if back.NumQueries() != 1 || back.NumRows() != b.NumRows() {
		t.Error("bundle metadata wrong")
	}
}

func TestNewBundleMissingExtent(t *testing.T) {
	st := store.New()
	p := cq.NewParser(st.Dict())
	v := p.MustParseQuery("q(X) :- t(X, p, o)")
	_, err := NewBundle(st.Dict(), nil, nil,
		map[algebra.ViewID]*cq.Query{1: v}, map[algebra.ViewID]*engine.Relation{})
	if err == nil {
		t.Fatal("missing extent accepted")
	}
}
