package persist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
	"rdfviews/internal/engine"
	"rdfviews/internal/rdf"
	"rdfviews/internal/store"
)

func TestDatabaseImageRoundTrip(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse(`
u1 hasPainted starryNight .
u2 name "Vincent" .
_:b knows u1 .
`))
	schema := rdf.NewSchema()
	schema.AddSubClass("painting", "picture")
	schema.AddDomain("hasPainted", "painter")

	var buf bytes.Buffer
	if err := SaveDatabase(&buf, st, schema); err != nil {
		t.Fatal(err)
	}
	st2, schema2, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples %d != %d", st2.Len(), st.Len())
	}
	for _, tr := range st.Triples() {
		if !st2.Contains(tr) {
			t.Errorf("missing triple %v", tr)
		}
	}
	if schema2.Len() != schema.Len() {
		t.Fatalf("schema %d != %d", schema2.Len(), schema.Len())
	}
	// Dictionary IDs are preserved: same terms decode identically.
	for _, id := range st.Dict().SortedIDs() {
		a := st.Dict().MustDecode(id)
		b := st2.Dict().MustDecode(id)
		if a != b {
			t.Fatalf("ID %d decodes differently: %v vs %v", id, a, b)
		}
	}
}

func TestSaveDatabaseNilSchema(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse("a p b ."))
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, st, nil); err != nil {
		t.Fatal(err)
	}
	_, schema, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 0 {
		t.Error("nil schema should load empty")
	}
}

func TestBundleRoundTripAllPlanNodes(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse(`
u1 hasPainted starryNight .
u1 isParentOf u2 .
u2 hasPainted irises .
`))
	p := cq.NewParser(st.Dict())
	v1 := p.MustParseQuery("q(X, Y) :- t(X, hasPainted, Y)")
	p.ResetNames()
	v2 := p.MustParseQuery("q(X, Y) :- t(X, isParentOf, Y)")
	views := map[algebra.ViewID]*cq.Query{1: v1, 2: v2}
	extents := map[algebra.ViewID]*engine.Relation{}
	for id, v := range views {
		rel, err := engine.Materialize(st, v)
		if err != nil {
			t.Fatal(err)
		}
		extents[id] = rel
	}
	x, y, z := v1.Head[0], v1.Head[1], v2.Head[1]
	// A plan exercising every node type.
	plan := algebra.NewProject(
		algebra.NewSelect(
			algebra.NewJoin(
				algebra.NewScan(2, []cq.Term{x, z}),
				algebra.NewUnion(
					algebra.NewScan(1, []cq.Term{z, y}),
					algebra.NewScan(1, []cq.Term{z, y}),
				),
			),
			algebra.Cond{Left: x, Right: x},
		),
		[]cq.Term{x, y},
	)
	queries := []*cq.Query{{Head: []cq.Term{x, y}, Atoms: v1.Atoms}}
	b, err := NewBundle(st.Dict(), queries, []algebra.Plan{plan}, views, extents)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.Answer(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Answer(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("bundle answers changed across roundtrip: %d vs %d rows", got.Len(), want.Len())
	}
	if back.NumQueries() != 1 || back.NumRows() != b.NumRows() {
		t.Error("bundle metadata wrong")
	}
}

func TestNewBundleMissingExtent(t *testing.T) {
	st := store.New()
	p := cq.NewParser(st.Dict())
	v := p.MustParseQuery("q(X) :- t(X, p, o)")
	_, err := NewBundle(st.Dict(), nil, nil,
		map[algebra.ViewID]*cq.Query{1: v}, map[algebra.ViewID]*engine.Relation{})
	if err == nil {
		t.Fatal("missing extent accepted")
	}
}

// TestLoadVersion1DatabaseImage reads an image in the pre-shard layout (flat
// Triples list, no Shards/Sections fields) — the backward-compatibility
// contract of the version 2 reader.
func TestLoadVersion1DatabaseImage(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse(`
u1 hasPainted starryNight .
u1 isParentOf u2 .
u2 hasPainted irises .
`))
	img := databaseImage{
		Version: 1,
		Terms:   st.Dict().Terms(),
		Triples: st.Triples(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if got.NumShards() != 1 {
		t.Fatalf("v1 image restored %d shards, want 1", got.NumShards())
	}
	if got.Len() != st.Len() {
		t.Fatalf("v1 image restored %d triples, want %d", got.Len(), st.Len())
	}
	for _, tr := range st.Triples() {
		if !got.Contains(tr) {
			t.Fatalf("v1 image lost %v", tr)
		}
	}
}

// TestShardedDatabaseRoundTrip checks that a sharded store snapshots into
// per-shard sections and restores with its partitioning intact.
func TestShardedDatabaseRoundTrip(t *testing.T) {
	st := store.NewSharded(4)
	d := st.Dict()
	for i := 0; i < 500; i++ {
		st.Add(store.Triple{
			d.EncodeIRI(fmt.Sprintf("s%d", i%97)),
			d.EncodeIRI(fmt.Sprintf("p%d", i%7)),
			d.EncodeIRI(fmt.Sprintf("o%d", i)),
		})
	}
	// Some deletions, so the sections are written from a snapshot with holes.
	for _, tr := range st.Triples()[:50] {
		st.Remove(tr)
	}
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, st, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != 4 {
		t.Fatalf("restored %d shards, want 4", got.NumShards())
	}
	if got.Len() != st.Len() {
		t.Fatalf("restored %d triples, want %d", got.Len(), st.Len())
	}
	for _, tr := range st.Triples() {
		if !got.Contains(tr) {
			t.Fatalf("round trip lost %v", tr)
		}
	}
	// The unsupported-version guard still trips.
	bad := databaseImage{Version: FormatVersion + 1}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&bad); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDatabase(&buf); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestDualDatabaseRoundTrip checks that a dual-partitioned store round-trips
// through the version 3 format: the image carries only subject-side sections
// plus the placement metadata, and the load rebuilds the object-side replicas
// through write routing.
func TestDualDatabaseRoundTrip(t *testing.T) {
	st := store.NewDual(4, 4)
	d := st.Dict()
	for i := 0; i < 500; i++ {
		st.Add(store.Triple{
			d.EncodeIRI(fmt.Sprintf("s%d", i%97)),
			d.EncodeIRI(fmt.Sprintf("p%d", i%7)),
			d.EncodeIRI(fmt.Sprintf("o%d", i%41)),
		})
	}
	for _, tr := range st.Triples()[:50] {
		st.Remove(tr)
	}
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, st, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pl := got.Placement(); pl.SubjectShards != 4 || pl.ObjectShards != 4 {
		t.Fatalf("restored placement %+v, want 4/4 dual", pl)
	}
	if got.Len() != st.Len() {
		t.Fatalf("restored %d triples, want %d", got.Len(), st.Len())
	}
	for _, tr := range st.Triples() {
		if !got.Contains(tr) {
			t.Fatalf("round trip lost %v", tr)
		}
	}
	// The rebuilt object side answers object-bound patterns identically to
	// the source store (and it is what serves them, per the placement).
	for i := 0; i < 41; i++ {
		pat := store.Pattern{0, 0, d.EncodeIRI(fmt.Sprintf("o%d", i))}
		if w, g := st.Count(pat), got.Count(pat); g != w {
			t.Fatalf("object-bound count o%d: got %d, want %d", i, g, w)
		}
	}
}

// TestLoadVersion2DatabaseImage reads an image in the exact pre-placement v2
// layout — a struct without the ObjectShards field — proving version 3
// readers still load version 2 artifacts, as a subject-only store.
func TestLoadVersion2DatabaseImage(t *testing.T) {
	st := store.NewSharded(4)
	st.MustAddGraph(rdf.MustParse(`
u1 hasPainted starryNight .
u1 isParentOf u2 .
u2 hasPainted irises .
`))
	type v2Image struct {
		Version  int
		Terms    []rdf.Term
		Triples  []store.Triple
		Schema   []rdf.Statement
		Shards   int
		Sections [][]store.Triple
	}
	img := v2Image{
		Version: 2,
		Terms:   st.Dict().Terms(),
		Shards:  st.NumShards(),
	}
	img.Sections = make([][]store.Triple, st.NumShards())
	for i := range img.Sections {
		img.Sections[i] = st.ShardTriples(i)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatalf("v2 image rejected: %v", err)
	}
	if got.NumShards() != 4 {
		t.Fatalf("v2 image restored %d shards, want 4", got.NumShards())
	}
	if pl := got.Placement(); pl.Dual() {
		t.Fatalf("v2 image restored dual placement %+v, want subject-only", pl)
	}
	if got.Len() != st.Len() {
		t.Fatalf("v2 image restored %d triples, want %d", got.Len(), st.Len())
	}
	for _, tr := range st.Triples() {
		if !got.Contains(tr) {
			t.Fatalf("v2 image lost %v", tr)
		}
	}
}
