// Package persist serializes the library's artifacts: database snapshots
// (dictionary + triples + schema) and view bundles — the self-contained
// client shipment of the paper's three-tier scenario: recommended view
// definitions, their materialized extents, one rewriting plan per workload
// query, and the dictionary needed to decode answers. A client loading a
// bundle answers every workload query with no database connection.
//
// The format is stdlib encoding/gob with the plan node types registered.
package persist

import (
	"encoding/gob"
	"fmt"
	"io"

	"rdfviews/internal/algebra"
	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/engine"
	"rdfviews/internal/rdf"
	"rdfviews/internal/store"
)

func init() {
	gob.Register(&algebra.Scan{})
	gob.Register(&algebra.Select{})
	gob.Register(&algebra.Project{})
	gob.Register(&algebra.Join{})
	gob.Register(&algebra.Union{})
}

// FormatVersion is the current snapshot/bundle format. Version 2 added
// per-shard database sections; version 3 added the placement metadata of
// dual-partitioned layouts (object-side shard count). Readers accept version
// 1 and 2 artifacts for backward compatibility.
const FormatVersion = 3

// oldestReadableVersion is the earliest format readers still understand.
const oldestReadableVersion = 1

// databaseImage is the gob form of a database snapshot. Version 1 wrote the
// flat Triples list; version 2 writes Shards + Sections (one triple section
// per store shard), so a sharded store round-trips with its partitioning;
// version 3 adds ObjectShards so a dual-partitioned store round-trips with
// its full placement. Only subject-side sections are written — the object
// side holds replicas of the same triples, so it is rebuilt by write routing
// on load rather than stored twice. Gob leaves absent fields zero, which is
// how newer readers recognize older images.
type databaseImage struct {
	Version      int
	Terms        []rdf.Term
	Triples      []store.Triple // v1 layout; nil in v2+ images
	Schema       []rdf.Statement
	Shards       int              // v2: subject-side shard count (0 in v1 images)
	Sections     [][]store.Triple // v2: per-subject-shard triples
	ObjectShards int              // v3: object-side shard count (0 = subject-only)
}

// SaveDatabase writes a snapshot of the store and schema, with one section
// per shard. The shard sections are pinned before the dictionary: the
// dictionary is append-only, so terms captured last are always a superset of
// the IDs in the earlier-pinned triples even when writers run concurrently.
func SaveDatabase(w io.Writer, st *store.Store, schema *rdf.Schema) error {
	img := databaseImage{
		Version:      FormatVersion,
		Shards:       st.NumShards(),
		ObjectShards: st.Placement().ObjectShards,
	}
	img.Sections = make([][]store.Triple, st.NumShards())
	for i := range img.Sections {
		img.Sections[i] = st.ShardTriples(i)
	}
	img.Terms = st.Dict().Terms()
	if schema != nil {
		img.Schema = schema.Statements()
	}
	return gob.NewEncoder(w).Encode(&img)
}

// LoadDatabase reads a snapshot back into a fresh store and schema. Version 1
// images load into a single-shard store; version 2 images restore the shard
// count they were written with; version 3 images restore the full dual
// placement, with the object-side replicas rebuilt by write routing (images
// never carry them). Older images load with ObjectShards zero — a
// subject-only layout, exactly what they were written from.
func LoadDatabase(r io.Reader) (*store.Store, *rdf.Schema, error) {
	var img databaseImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, nil, fmt.Errorf("persist: decoding database: %w", err)
	}
	if img.Version < oldestReadableVersion || img.Version > FormatVersion {
		return nil, nil, fmt.Errorf("persist: unsupported format version %d", img.Version)
	}
	shards := img.Shards
	if shards < 1 {
		shards = 1
	}
	st := store.NewWithDictDual(dict.FromTerms(img.Terms), shards, img.ObjectShards)
	st.AddBatch(img.Triples)
	for _, sec := range img.Sections {
		st.AddBatch(sec)
	}
	schema := rdf.NewSchema()
	for _, s := range img.Schema {
		schema.Add(s)
	}
	return st, schema, nil
}

// BundleView is one view of a bundle: its definition and extent.
type BundleView struct {
	ID    algebra.ViewID
	Head  []cq.Term
	Atoms []cq.Atom
	Cols  []cq.Term
	Rows  []engine.Row
}

// Bundle is the client shipment: everything needed to answer the workload
// off-line.
type Bundle struct {
	Version int
	// Terms is the dictionary (decode answers; IDs are positions + 1).
	Terms []rdf.Term
	// QueryTexts renders each workload query (documentation only).
	QueryTexts []string
	// Plans holds one rewriting per workload query, over the bundle views.
	Plans []algebra.Plan
	// Views holds definitions and extents.
	Views []BundleView
}

// NewBundle assembles a bundle from a recommendation's parts.
func NewBundle(d *dict.Dictionary, queries []*cq.Query, plans []algebra.Plan,
	views map[algebra.ViewID]*cq.Query, extents map[algebra.ViewID]*engine.Relation) (*Bundle, error) {
	b := &Bundle{Version: FormatVersion, Terms: d.Terms(), Plans: plans}
	for _, q := range queries {
		b.QueryTexts = append(b.QueryTexts, q.Format(d))
	}
	for id, v := range views {
		ext, ok := extents[id]
		if !ok {
			return nil, fmt.Errorf("persist: view v%d has no extent", int(id))
		}
		b.Views = append(b.Views, BundleView{
			ID:    id,
			Head:  v.Head,
			Atoms: v.Atoms,
			Cols:  ext.Cols,
			Rows:  ext.Rows,
		})
	}
	return b, nil
}

// Save writes the bundle.
func (b *Bundle) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(b)
}

// LoadBundle reads a bundle.
func LoadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("persist: decoding bundle: %w", err)
	}
	// The bundle layout is unchanged since version 1; accept the range.
	if b.Version < oldestReadableVersion || b.Version > FormatVersion {
		return nil, fmt.Errorf("persist: unsupported format version %d", b.Version)
	}
	return &b, nil
}

// Dict rebuilds the bundle's dictionary.
func (b *Bundle) Dict() *dict.Dictionary { return dict.FromTerms(b.Terms) }

// Resolver exposes the bundled extents to plan execution.
func (b *Bundle) Resolver() engine.ViewResolver {
	byID := make(map[algebra.ViewID]*engine.Relation, len(b.Views))
	for _, v := range b.Views {
		byID[v.ID] = &engine.Relation{Cols: v.Cols, Rows: v.Rows}
	}
	return engine.MapResolver(byID)
}

// Answer executes the rewriting of query i over the bundled views.
func (b *Bundle) Answer(i int) (*engine.Relation, error) {
	if i < 0 || i >= len(b.Plans) {
		return nil, fmt.Errorf("persist: query index %d out of range", i)
	}
	return engine.Execute(b.Plans[i], b.Resolver())
}

// NumQueries returns the workload size.
func (b *Bundle) NumQueries() int { return len(b.Plans) }

// NumRows returns the total bundled tuples.
func (b *Bundle) NumRows() int {
	n := 0
	for _, v := range b.Views {
		n += len(v.Rows)
	}
	return n
}
