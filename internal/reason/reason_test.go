package reason

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/engine"
	"rdfviews/internal/rdf"
	"rdfviews/internal/store"
)

// paperSchema builds the Section 4.1 museum schema.
func paperSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.AddSubClass("painting", "masterpiece")
	s.AddSubClass("masterpiece", "work")
	s.AddSubProperty("hasPainted", "hasCreated")
	s.AddRange("hasPainted", "painting")
	s.AddRange("hasCreated", "masterpiece")
	return s
}

func TestSaturatePaperExample(t *testing.T) {
	// Section 4.1: (u, hasPainted, _:b) entails (u, hasCreated, _:b),
	// (_:b, type, painting), (_:b, type, masterpiece), (_:b, type, work).
	st := store.New()
	st.MustAddGraph(rdf.MustParse("u hasPainted b0 ."))
	s := NewSchema(paperSchema(), st.Dict())
	sat := Saturate(st, s)

	want := rdf.MustParse(`
u hasCreated b0 .
b0 rdf:type painting .
b0 rdf:type masterpiece .
b0 rdf:type work .
`)
	for _, tr := range want {
		if !sat.Contains(sat.Encode(tr)) {
			t.Errorf("saturation misses %v", tr)
		}
	}
	if sat.Len() != 5 {
		t.Errorf("saturated size = %d, want 5", sat.Len())
	}
	if st.Len() != 1 {
		t.Error("Saturate mutated the original store")
	}
}

func TestSaturateIdempotent(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse(`
u hasPainted p1 .
v rdf:type painting .
`))
	s := NewSchema(paperSchema(), st.Dict())
	sat1 := Saturate(st, s)
	sat2 := Saturate(sat1, s)
	if sat1.Len() != sat2.Len() {
		t.Errorf("saturation not a fixpoint: %d then %d", sat1.Len(), sat2.Len())
	}
}

func TestSaturateSubclassTransitivity(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse("x rdf:type painting ."))
	s := NewSchema(paperSchema(), st.Dict())
	sat := Saturate(st, s)
	for _, cls := range []string{"masterpiece", "work"} {
		tr := sat.Encode(rdf.T("x", rdf.RDFType, cls))
		if !sat.Contains(tr) {
			t.Errorf("missing transitive type %s", cls)
		}
	}
}

func TestEntailedTripleBound(t *testing.T) {
	st := store.New()
	st.MustAddGraph(rdf.MustParse("u hasPainted p1 .\nv hasPainted p2 ."))
	s := NewSchema(paperSchema(), st.Dict())
	sat := Saturate(st, s)
	implicit := sat.Len() - st.Len()
	if bound := EntailedTripleBound(st, s); implicit > bound {
		t.Errorf("implicit %d exceeds bound %d", implicit, bound)
	}
}

func TestReformulateRule1SubClass(t *testing.T) {
	d := dict.New()
	s := NewSchema(paperSchema(), d)
	p := cq.NewParser(d)
	q := p.MustParseQuery("q(X) :- t(X, rdf:type, masterpiece)")
	u := MustReformulate(q, s)
	// Rule 1: masterpiece ⇐ painting. Rule 4 on the masterpiece atom
	// (range(hasCreated)=masterpiece) and on the derived painting atom
	// (range(hasPainted)=painting): four terms in total.
	if u.Len() != 4 {
		t.Fatalf("union size = %d, want 4\n%s", u.Len(), u.Format(d))
	}
}

func TestReformulateRule1Transitive(t *testing.T) {
	d := dict.New()
	s := NewSchema(paperSchema(), d)
	p := cq.NewParser(d)
	q := p.MustParseQuery("q(X) :- t(X, rdf:type, work)")
	u := MustReformulate(q, s)
	// work ⇐ masterpiece ⇐ painting, plus range-based terms:
	// work has no direct domain/range property... hasCreated range masterpiece,
	// hasPainted range painting; neither has range work directly, so rule 4
	// fires only after rewriting to masterpiece/painting.
	// Terms: {type work}, {type masterpiece}, {type painting},
	//        {∃Y hasCreated(Y, X)} (range masterpiece),
	//        {∃Y hasPainted(Y, X)} (range painting).
	if u.Len() != 5 {
		t.Fatalf("union size = %d, want 5\n%s", u.Len(), u.Format(d))
	}
}

func TestReformulateRule2SubProperty(t *testing.T) {
	d := dict.New()
	s := NewSchema(paperSchema(), d)
	p := cq.NewParser(d)
	q := p.MustParseQuery("q(X, Y) :- t(X, hasCreated, Y)")
	u := MustReformulate(q, s)
	if u.Len() != 2 {
		t.Fatalf("union size = %d, want 2\n%s", u.Len(), u.Format(d))
	}
}

func TestReformulateRules5And6(t *testing.T) {
	// The paper's Table 2 example (Section 4.3), golden-tested in
	// table2_test.go; here check the raw counts for the two relaxed atoms.
	d := dict.New()
	sch := rdf.NewSchema()
	sch.AddSubClass("painting", "picture")
	sch.AddSubProperty("isExpIn", "isLocatIn")
	s := NewSchema(sch, d)
	p := cq.NewParser(d)

	// q1(X1) :- t(X1, rdf:type, picture): rule 1 applies once.
	q1 := p.MustParseQuery("q(X1) :- t(X1, rdf:type, picture)")
	u1 := MustReformulate(q1, s)
	if u1.Len() != 2 {
		t.Errorf("q1,S size = %d, want 2\n%s", u1.Len(), u1.Format(d))
	}

	// q4(X1, X2) :- t(X1, X2, picture): rule 6 then rules 2 and 1 — six terms.
	p.ResetNames()
	q4 := p.MustParseQuery("q(X1, X2) :- t(X1, X2, picture)")
	u4 := MustReformulate(q4, s)
	if u4.Len() != 6 {
		t.Errorf("q4,S size = %d, want 6\n%s", u4.Len(), u4.Format(d))
	}
}

func TestReformulateTerminationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		d := dict.New()
		sch := randomSchema(rng, 2+rng.Intn(4))
		s := NewSchema(sch, d)
		p := cq.NewParser(d)
		q := randomSchemaQuery(rng, p, s, 1+rng.Intn(3))
		u, err := Reformulate(q, s, 0)
		if err != nil {
			t.Fatalf("Reformulate failed: %v", err)
		}
		bound := TerminationBound(s, len(q.Atoms))
		if float64(u.Len()) > bound {
			t.Fatalf("union %d exceeds bound (2|S|²)^m = %g for |S|=%d m=%d",
				u.Len(), bound, s.Len(), len(q.Atoms))
		}
	}
}

func TestReformulateLimit(t *testing.T) {
	d := dict.New()
	sch := randomSchema(rand.New(rand.NewSource(3)), 6)
	s := NewSchema(sch, d)
	p := cq.NewParser(d)
	// Variable property positions explode under rule 6; a limit of 2 must trip.
	q := p.MustParseQuery("q(X) :- t(X, P1, Y), t(Y, P2, Z)")
	_, err := Reformulate(q, s, 2)
	if !errors.Is(err, ErrTooManyUnionTerms) {
		t.Fatalf("expected ErrTooManyUnionTerms, got %v", err)
	}
}

// randomSchema builds a small random schema over classes c0..c5 and
// properties p0..p4.
func randomSchema(rng *rand.Rand, n int) *rdf.Schema {
	s := rdf.NewSchema()
	cls := func(i int) string { return fmt.Sprintf("c%d", i) }
	prp := func(i int) string { return fmt.Sprintf("p%d", i) }
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			s.AddSubClass(cls(rng.Intn(6)), cls(rng.Intn(6)))
		case 1:
			s.AddSubProperty(prp(rng.Intn(5)), prp(rng.Intn(5)))
		case 2:
			s.AddDomain(prp(rng.Intn(5)), cls(rng.Intn(6)))
		default:
			s.AddRange(prp(rng.Intn(5)), cls(rng.Intn(6)))
		}
	}
	return s
}

// randomSchemaQuery builds a connected query whose constants come from the
// schema vocabulary, so reformulation has rules to fire.
func randomSchemaQuery(rng *rand.Rand, p *cq.Parser, s *Schema, atoms int) *cq.Query {
	d := s.Dict()
	vars := []cq.Term{p.FreshVar()}
	var as []cq.Atom
	for i := 0; i < atoms; i++ {
		subj := vars[rng.Intn(len(vars))]
		if rng.Intn(3) == 0 { // type atom
			var cls cq.Term
			if len(s.Classes) > 0 && rng.Intn(4) > 0 {
				cls = cq.Const(s.Classes[rng.Intn(len(s.Classes))])
			} else {
				v := p.FreshVar()
				vars = append(vars, v)
				cls = v
			}
			as = append(as, cq.Atom{subj, cq.Const(s.TypeID), cls})
			continue
		}
		var prop cq.Term
		if len(s.Properties) > 0 && rng.Intn(5) > 0 {
			prop = cq.Const(s.Properties[rng.Intn(len(s.Properties))])
		} else if rng.Intn(2) == 0 {
			prop = cq.Const(d.EncodeIRI(fmt.Sprintf("q%d", rng.Intn(3))))
		} else {
			v := p.FreshVar()
			vars = append(vars, v)
			prop = v
		}
		obj := p.FreshVar()
		vars = append(vars, obj)
		as = append(as, cq.Atom{subj, prop, obj})
	}
	head := []cq.Term{vars[0]}
	q := &cq.Query{Head: head, Atoms: as}
	if q.Validate() != nil {
		return randomSchemaQuery(rng, p, s, atoms)
	}
	return q
}

// randomData populates a store with triples over the schema vocabulary.
func randomData(rng *rand.Rand, st *store.Store, s *Schema, n int) {
	d := st.Dict()
	res := func(i int) dict.ID { return d.EncodeIRI(fmt.Sprintf("r%d", i)) }
	for i := 0; i < n; i++ {
		sub := res(rng.Intn(8))
		switch rng.Intn(3) {
		case 0: // type triple
			if len(s.Classes) > 0 {
				st.Add(store.Triple{sub, s.TypeID, s.Classes[rng.Intn(len(s.Classes))]})
				continue
			}
			fallthrough
		case 1: // schema property triple
			if len(s.Properties) > 0 {
				st.Add(store.Triple{sub, s.Properties[rng.Intn(len(s.Properties))], res(rng.Intn(8))})
				continue
			}
			fallthrough
		default: // other property
			st.Add(store.Triple{sub, d.EncodeIRI(fmt.Sprintf("q%d", rng.Intn(3))), res(rng.Intn(8))})
		}
	}
}

// TestReformulateEquivalentToSaturation is the Theorem 4.2 property test:
// evaluate(q, saturate(D,S)) == evaluate(Reformulate(q,S), D) on random
// schemas, databases, and queries.
func TestReformulateEquivalentToSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 40; trial++ {
		st := store.New()
		sch := randomSchema(rng, 1+rng.Intn(6))
		s := NewSchema(sch, st.Dict())
		randomData(rng, st, s, 5+rng.Intn(40))
		p := cq.NewParser(st.Dict())
		q := randomSchemaQuery(rng, p, s, 1+rng.Intn(3))

		u, err := Reformulate(q, s, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sat := Saturate(st, s)
		onSat, err := engine.EvalQuery(sat, q)
		if err != nil {
			t.Fatalf("trial %d eval on saturated: %v", trial, err)
		}
		onOrig, err := engine.EvalUCQ(st, u)
		if err != nil {
			t.Fatalf("trial %d eval reformulation: %v", trial, err)
		}
		if !onSat.EqualAsSet(onOrig) {
			t.Fatalf("trial %d: Theorem 4.2 violated\nquery: %s\nschema: %v\n|sat|=%d |orig|=%d union=%d\nsat rows: %d, reform rows: %d",
				trial, q.Format(st.Dict()), sch.Statements(), sat.Len(), st.Len(), u.Len(), onSat.Len(), onOrig.Len())
		}
	}
}

func TestReformulateUCQMerges(t *testing.T) {
	d := dict.New()
	s := NewSchema(paperSchema(), d)
	p := cq.NewParser(d)
	q1 := p.MustParseQuery("q(X) :- t(X, rdf:type, masterpiece)")
	p.ResetNames()
	q2 := p.MustParseQuery("q(X) :- t(X, rdf:type, painting)")
	u, err := ReformulateUCQ(cq.NewUCQ(q1, q2), s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// q1 reformulates to {masterpiece, painting, ∃hasCreated, ∃hasPainted};
	// actually: masterpiece ⇐ painting (rule 1), range(hasCreated)=masterpiece
	// (rule 4), then painting ⇐ nothing more except range(hasPainted)=painting.
	// q2 reformulates to {painting, ∃hasPainted}. The merged union must
	// deduplicate the shared terms.
	if !u.Contains(q2) {
		t.Error("merged union should contain q2's base term")
	}
	sum := 0
	for _, q := range []*cq.Query{q1, q2} {
		r := MustReformulate(q, s)
		sum += r.Len()
	}
	if u.Len() >= sum {
		t.Errorf("no dedup across members: %d vs %d", u.Len(), sum)
	}
}

func TestSchemaAccessorsEncoded(t *testing.T) {
	d := dict.New()
	s := NewSchema(paperSchema(), d)
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	if len(s.Classes) != 3 || len(s.Properties) != 2 {
		t.Errorf("Classes=%d Properties=%d", len(s.Classes), len(s.Properties))
	}
	mp := d.EncodeIRI("masterpiece")
	if got := s.SubClassesOf(mp); len(got) != 1 {
		t.Errorf("SubClassesOf(masterpiece) = %v", got)
	}
	hc := d.EncodeIRI("hasCreated")
	if got := s.SubPropertiesOf(hc); len(got) != 1 {
		t.Errorf("SubPropertiesOf(hasCreated) = %v", got)
	}
	painting := d.EncodeIRI("painting")
	if got := s.RangePropertiesOf(painting); len(got) != 1 {
		t.Errorf("RangePropertiesOf(painting) = %v", got)
	}
	if got := s.DomainPropertiesOf(painting); len(got) != 0 {
		t.Errorf("DomainPropertiesOf(painting) = %v", got)
	}
	if s.Source() != nil && s.Source().Len() != 5 {
		t.Error("Source roundtrip")
	}
	if s.Dict() != d {
		t.Error("Dict accessor")
	}
}
