// Package reason implements RDF entailment for the RDFS fragment of Table 1:
// database saturation and the paper's novel query reformulation algorithm
// (Algorithm 1), together with the schema encoding both rely on.
//
// Following the DL fragment of RDF that the paper's reasoning targets
// (Section 7), the schema (Tbox) is kept separate from the dataset (Abox):
// Saturate adds the implicit *data* triples entailed by the schema, and
// Reformulate rewrites queries so that evaluating them on the original
// dataset returns the answers they would have on the saturated one
// (Theorem 4.2).
package reason

import (
	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/rdf"
	"rdfviews/internal/store"
)

// Schema is an RDFS schema encoded against a dictionary, with both the
// direct statement maps used by Reformulate (Algorithm 1 applies statements
// of S backward, one at a time) and the transitively closed maps used by
// Saturate (one closed-schema pass computes the data fixpoint).
type Schema struct {
	dict *dict.Dictionary
	src  *rdf.Schema

	// TypeID is the dictionary code of rdf:type.
	TypeID dict.ID

	// Direct maps, super → direct subs (backward application of rules 1–2).
	subClassesOf map[dict.ID][]dict.ID
	subPropsOf   map[dict.ID][]dict.ID
	// Direct maps, class → properties with that domain/range (rules 3–4).
	domainProps map[dict.ID][]dict.ID
	rangeProps  map[dict.ID][]dict.ID

	// Closed maps for saturation: sub → all supers, property → all
	// domain/range classes (including inherited and propagated ones).
	superClasses map[dict.ID][]dict.ID
	superProps   map[dict.ID][]dict.ID
	domainsOf    map[dict.ID][]dict.ID
	rangesOf     map[dict.ID][]dict.ID

	// All classes and properties of S, sorted by ID (rules 5–6).
	Classes    []dict.ID
	Properties []dict.ID
}

// NewSchema encodes an rdf.Schema against the dictionary.
func NewSchema(src *rdf.Schema, d *dict.Dictionary) *Schema {
	s := &Schema{
		dict:         d,
		src:          src,
		TypeID:       d.EncodeIRI(rdf.RDFType),
		subClassesOf: map[dict.ID][]dict.ID{},
		subPropsOf:   map[dict.ID][]dict.ID{},
		domainProps:  map[dict.ID][]dict.ID{},
		rangeProps:   map[dict.ID][]dict.ID{},
		superClasses: map[dict.ID][]dict.ID{},
		superProps:   map[dict.ID][]dict.ID{},
		domainsOf:    map[dict.ID][]dict.ID{},
		rangesOf:     map[dict.ID][]dict.ID{},
	}
	for _, st := range src.Statements() {
		l, r := d.EncodeIRI(st.Left), d.EncodeIRI(st.Right)
		switch st.Kind {
		case rdf.SubClass:
			s.subClassesOf[r] = appendUnique(s.subClassesOf[r], l)
		case rdf.SubProperty:
			s.subPropsOf[r] = appendUnique(s.subPropsOf[r], l)
		case rdf.Domain:
			s.domainProps[r] = appendUnique(s.domainProps[r], l)
		case rdf.Range:
			s.rangeProps[r] = appendUnique(s.rangeProps[r], l)
		}
	}
	closed := src.Closure()
	for _, st := range closed.Statements() {
		l, r := d.EncodeIRI(st.Left), d.EncodeIRI(st.Right)
		switch st.Kind {
		case rdf.SubClass:
			s.superClasses[l] = appendUnique(s.superClasses[l], r)
		case rdf.SubProperty:
			s.superProps[l] = appendUnique(s.superProps[l], r)
		case rdf.Domain:
			s.domainsOf[l] = appendUnique(s.domainsOf[l], r)
		case rdf.Range:
			s.rangesOf[l] = appendUnique(s.rangesOf[l], r)
		}
	}
	for _, c := range src.Classes() {
		s.Classes = append(s.Classes, d.EncodeIRI(c))
	}
	for _, p := range src.Properties() {
		s.Properties = append(s.Properties, d.EncodeIRI(p))
	}
	return s
}

// Source returns the string-level schema this encoding was built from.
func (s *Schema) Source() *rdf.Schema { return s.src }

// Dict returns the dictionary the schema is encoded against.
func (s *Schema) Dict() *dict.Dictionary { return s.dict }

// Len returns |S|, the number of schema statements (Theorem 4.1's measure).
func (s *Schema) Len() int { return s.src.Len() }

// SubClassesOf returns the direct subclasses of class c.
func (s *Schema) SubClassesOf(c dict.ID) []dict.ID { return s.subClassesOf[c] }

// SubPropertiesOf returns the direct subproperties of property p.
func (s *Schema) SubPropertiesOf(p dict.ID) []dict.ID { return s.subPropsOf[p] }

// DomainPropertiesOf returns the properties declared with domain c.
func (s *Schema) DomainPropertiesOf(c dict.ID) []dict.ID { return s.domainProps[c] }

// RangePropertiesOf returns the properties declared with range c.
func (s *Schema) RangePropertiesOf(c dict.ID) []dict.ID { return s.rangeProps[c] }

// Saturate returns a new store containing db plus every implicit data triple
// entailed by the schema (Section 4.2, "database saturation"). The original
// store is not modified; the two stores share a dictionary.
//
// Because the schema maps used here are transitively closed (including
// domain/range inheritance along subPropertyOf and propagation up
// subClassOf), a single pass over the explicit triples reaches the fixpoint:
// every derived triple's own consequences are already direct consequences of
// some explicit triple under the closed schema.
func Saturate(db *store.Store, s *Schema) *store.Store {
	out := db.Clone()
	for _, t := range db.Triples() {
		sub, p, o := t[store.S], t[store.P], t[store.O]
		if p == s.TypeID {
			for _, c := range s.superClasses[o] {
				out.Add(store.Triple{sub, s.TypeID, c})
			}
			continue
		}
		for _, p2 := range s.superProps[p] {
			out.Add(store.Triple{sub, p2, o})
		}
		for _, c := range s.domainsOf[p] {
			out.Add(store.Triple{sub, s.TypeID, c})
		}
		for _, c := range s.rangesOf[p] {
			out.Add(store.Triple{o, s.TypeID, c})
		}
	}
	return out
}

// EntailedTripleBound returns the O(|D|·|S|) bound on the number of implicit
// triples discussed in Section 6.5: each explicit triple can entail at most
// one triple per schema statement under the Table 1 rules.
func EntailedTripleBound(db *store.Store, s *Schema) int {
	return db.Len() * s.Len()
}

func appendUnique(xs []dict.ID, x dict.ID) []dict.ID {
	for _, y := range xs {
		if y == x {
			return xs
		}
	}
	return append(xs, x)
}

// typeAtomClass extracts (subjectTerm, classID, true) when the atom has the
// form t(s, rdf:type, c) with constant class c.
func (s *Schema) typeAtomClass(a cq.Atom) (cq.Term, dict.ID, bool) {
	if !a[1].IsConst() || a[1].ConstID() != s.TypeID {
		return 0, 0, false
	}
	if !a[2].IsConst() {
		return 0, 0, false
	}
	return a[0], a[2].ConstID(), true
}
