package reason

import (
	"testing"

	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/rdf"
)

// TestPaperTable2 reproduces Table 2 of the paper exactly: the term
// reformulations of q1 and q4 for the schema
//
//	S = { painting rdfs:subClassOf picture,
//	      isExpIn rdfs:subPropertyOf isLocatIn }
func TestPaperTable2(t *testing.T) {
	d := dict.New()
	sch := rdf.NewSchema()
	sch.AddSubClass("painting", "picture")
	sch.AddSubProperty("isExpIn", "isLocatIn")
	s := NewSchema(sch, d)
	p := cq.NewParser(d)

	typeC := cq.Const(s.TypeID)
	picture := cq.Const(d.EncodeIRI("picture"))
	painting := cq.Const(d.EncodeIRI("painting"))
	isLocatIn := cq.Const(d.EncodeIRI("isLocatIn"))
	isExpIn := cq.Const(d.EncodeIRI("isExpIn"))

	t.Run("q1", func(t *testing.T) {
		q1 := p.MustParseQuery("q(X1) :- t(X1, rdf:type, picture)")
		u := MustReformulate(q1, s)
		x1 := q1.Head[0]
		want := []*cq.Query{
			// (1) q1(X1) :- t(X1, rdf:type, picture)
			{Head: []cq.Term{x1}, Atoms: []cq.Atom{{x1, typeC, picture}}},
			// (2) q1(X1) :- t(X1, rdf:type, painting)
			{Head: []cq.Term{x1}, Atoms: []cq.Atom{{x1, typeC, painting}}},
		}
		assertUnionExactly(t, u, want, d)
	})

	t.Run("q4", func(t *testing.T) {
		p.ResetNames()
		q4 := p.MustParseQuery("q(X1, X2) :- t(X1, X2, picture)")
		x1, x2 := q4.Head[0], q4.Head[1]
		u := MustReformulate(q4, s)
		want := []*cq.Query{
			// (1) q4(X1, X2) :- t(X1, X2, picture)
			{Head: []cq.Term{x1, x2}, Atoms: []cq.Atom{{x1, x2, picture}}},
			// (2) q4(X1, isLocatIn) :- t(X1, isLocatIn, picture)
			{Head: []cq.Term{x1, isLocatIn}, Atoms: []cq.Atom{{x1, isLocatIn, picture}}},
			// (3) q4(X1, isExpIn) :- t(X1, isExpIn, picture)
			{Head: []cq.Term{x1, isExpIn}, Atoms: []cq.Atom{{x1, isExpIn, picture}}},
			// (4) q4(X1, rdf:type) :- t(X1, rdf:type, picture)
			{Head: []cq.Term{x1, typeC}, Atoms: []cq.Atom{{x1, typeC, picture}}},
			// (5) q4(X1, isLocatIn) :- t(X1, isExpIn, picture)
			{Head: []cq.Term{x1, isLocatIn}, Atoms: []cq.Atom{{x1, isExpIn, picture}}},
			// (6) q4(X1, rdf:type) :- t(X1, rdf:type, painting)
			{Head: []cq.Term{x1, typeC}, Atoms: []cq.Atom{{x1, typeC, painting}}},
		}
		assertUnionExactly(t, u, want, d)
	})
}

func assertUnionExactly(t *testing.T, got *cq.UCQ, want []*cq.Query, d *dict.Dictionary) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("union has %d terms, want %d:\n%s", got.Len(), len(want), got.Format(d))
	}
	for _, w := range want {
		if !got.Contains(w) {
			t.Errorf("missing union term %s in:\n%s", w.Format(d), got.Format(d))
		}
	}
}
