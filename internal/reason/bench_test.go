package reason

import (
	"testing"

	"rdfviews/internal/cq"
	"rdfviews/internal/datagen"
	"rdfviews/internal/store"
)

func BenchmarkSaturateBartonLike(b *testing.B) {
	st, sch := datagen.Generate(datagen.Config{Triples: 20000, Seed: 1})
	schema := NewSchema(sch, st.Dict())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat := Saturate(st, schema)
		if sat.Len() < st.Len() {
			b.Fatal("saturation shrank the store")
		}
	}
}

func BenchmarkReformulateTypeQuery(b *testing.B) {
	st, sch := datagen.Generate(datagen.Config{Triples: 1000, Seed: 1})
	schema := NewSchema(sch, st.Dict())
	p := cq.NewParser(st.Dict())
	q := p.MustParseQuery(
		"q(X) :- t(X, rdf:type, " + datagen.ClassName(0) + "), t(X, " + datagen.PropName(0) + ", Y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reformulate(q, schema, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemaEncoding(b *testing.B) {
	sch := datagen.GenerateSchema(datagen.Config{})
	st := store.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSchema(sch, st.Dict())
	}
}
