package reason

import (
	"fmt"

	"rdfviews/internal/cq"
)

// DefaultMaxUnionTerms bounds the size of reformulations. Theorem 4.1 bounds
// the output by (2|S|²)^m union terms, which is astronomically large for
// variable-property queries over sizeable schemas; the limit turns that
// blow-up into a clean error instead of an out-of-memory condition.
const DefaultMaxUnionTerms = 200000

// ErrTooManyUnionTerms is returned (wrapped) when a reformulation exceeds
// the configured union-term limit.
var ErrTooManyUnionTerms = fmt.Errorf("reason: reformulation exceeds the union-term limit")

// Reformulate implements Algorithm 1 of the paper: it rewrites the
// conjunctive query q into a union of conjunctive queries ucq such that, for
// any database D associated with schema S,
//
//	evaluate(q, saturate(D, S)) = evaluate(ucq, D)
//
// (Theorem 4.2). The six rules of Figure 2 are applied backward on query
// atoms to a fixpoint; union terms are deduplicated up to variable renaming,
// which also guarantees termination (Theorem 4.1).
//
// maxTerms ≤ 0 selects DefaultMaxUnionTerms.
func Reformulate(q *cq.Query, s *Schema, maxTerms int) (*cq.UCQ, error) {
	if maxTerms <= 0 {
		maxTerms = DefaultMaxUnionTerms
	}
	// Fresh variables for rules 3 and 4 (∃X t(s,p,X) / ∃X t(X,p,o)).
	nextVar := q.MaxVarNum()
	freshVar := func() cq.Term {
		nextVar++
		return cq.Var(nextVar)
	}

	ucq := cq.NewUCQ(q)
	queue := []*cq.Query{q}
	emit := func(nq *cq.Query) error {
		if ucq.Add(nq) {
			if ucq.Len() > maxTerms {
				return fmt.Errorf("%w: more than %d terms for query with %d atoms and |S|=%d",
					ErrTooManyUnionTerms, maxTerms, len(q.Atoms), s.Len())
			}
			queue = append(queue, nq)
		}
		return nil
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for gi, g := range cur.Atoms {
			// Rule 1: t(s, rdf:type, c2) ⇐ t(s, rdf:type, c1), c1 ⊑ c2 ∈ S.
			if subj, c2, ok := s.typeAtomClass(g); ok {
				for _, c1 := range s.subClassesOf[c2] {
					nq := cur.ReplaceAtom(gi, cq.Atom{subj, cq.Const(s.TypeID), cq.Const(c1)})
					if err := emit(nq); err != nil {
						return nil, err
					}
				}
				// Rule 3: t(s, rdf:type, c) ⇐ ∃X t(s, p, X), p domain c ∈ S.
				for _, p := range s.domainProps[c2] {
					nq := cur.ReplaceAtom(gi, cq.Atom{subj, cq.Const(p), freshVar()})
					if err := emit(nq); err != nil {
						return nil, err
					}
				}
				// Rule 4: t(o, rdf:type, c) ⇐ ∃X t(X, p, o), p range c ∈ S.
				for _, p := range s.rangeProps[c2] {
					nq := cur.ReplaceAtom(gi, cq.Atom{freshVar(), cq.Const(p), subj})
					if err := emit(nq); err != nil {
						return nil, err
					}
				}
			}
			// Rule 2: t(s, p2, o) ⇐ t(s, p1, o), p1 ⊑ p2 ∈ S.
			if g[1].IsConst() {
				for _, p1 := range s.subPropsOf[g[1].ConstID()] {
					nq := cur.ReplaceAtom(gi, cq.Atom{g[0], cq.Const(p1), g[2]})
					if err := emit(nq); err != nil {
						return nil, err
					}
				}
			}
			// Rule 5: t(s, rdf:type, X) with X a variable: bind X to every
			// class of S throughout the query.
			if g[1].IsConst() && g[1].ConstID() == s.TypeID && g[2].IsVar() {
				for _, c := range s.Classes {
					if err := emit(cur.Substitute(g[2], cq.Const(c))); err != nil {
						return nil, err
					}
				}
			}
			// Rule 6: t(s, X, o) with X a variable in property position:
			// bind X to every property of S, and to rdf:type.
			if g[1].IsVar() {
				for _, p := range s.Properties {
					if err := emit(cur.Substitute(g[1], cq.Const(p))); err != nil {
						return nil, err
					}
				}
				if err := emit(cur.Substitute(g[1], cq.Const(s.TypeID))); err != nil {
					return nil, err
				}
			}
		}
	}
	return ucq, nil
}

// MustReformulate is Reformulate panicking on error (tests/examples).
func MustReformulate(q *cq.Query, s *Schema) *cq.UCQ {
	u, err := Reformulate(q, s, 0)
	if err != nil {
		panic(err)
	}
	return u
}

// ReformulateUCQ reformulates every member of a union and merges the results
// (used when reformulating views that are already unions).
func ReformulateUCQ(u *cq.UCQ, s *Schema, maxTerms int) (*cq.UCQ, error) {
	out := cq.NewUCQ()
	for _, q := range u.Queries {
		r, err := Reformulate(q, s, maxTerms)
		if err != nil {
			return nil, err
		}
		for _, rq := range r.Queries {
			out.Add(rq)
		}
	}
	return out, nil
}

// TerminationBound returns the (2|S|²)^m bound of Theorem 4.1 on the number
// of union terms, as a float64 to avoid overflow for large m.
func TerminationBound(s *Schema, atoms int) float64 {
	b := 1.0
	base := 2.0 * float64(s.Len()) * float64(s.Len())
	if base < 1 {
		base = 1
	}
	for i := 0; i < atoms; i++ {
		b *= base
	}
	return b
}
