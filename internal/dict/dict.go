// Package dict implements the dictionary encoding used by the storage layer:
// each distinct RDF term is mapped to a dense positive integer ID, mirroring
// the paper's "dictionary-encoded triple table, using a distinct integer for
// each distinct URI or literal" (Section 6).
//
// IDs start at 1; 0 is never a valid ID (the conjunctive-query layer reserves
// non-positive values for variables).
//
// The dictionary is safe for concurrent use: encoders take a write lock,
// decoders and lookups a read lock, matching the sharded store's
// readers-alongside-writers contract (a query decoding answers must not race
// an update encoding fresh terms).
package dict

import (
	"fmt"
	"sort"
	"sync"

	"rdfviews/internal/rdf"
)

// ID is a dictionary code for one RDF term. Valid IDs are >= 1.
type ID int64

// Dictionary is a bidirectional mapping between RDF terms and IDs.
// The zero value is not usable; call New.
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[string]ID
	terms []rdf.Term // terms[i] has ID i+1
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{byKey: make(map[string]ID)}
}

// Encode returns the ID for the term, assigning a fresh one on first sight.
func (d *Dictionary) Encode(t rdf.Term) ID {
	k := t.Key()
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[k]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.byKey[k] = id
	return id
}

// EncodeIRI is Encode over a bare IRI string (after expanding the well-known
// rdf:/rdfs: prefixes).
func (d *Dictionary) EncodeIRI(iri string) ID {
	return d.Encode(rdf.NewIRI(rdf.ExpandIRI(iri)))
}

// Lookup returns the ID for the term if it is already in the dictionary.
func (d *Dictionary) Lookup(t rdf.Term) (ID, bool) {
	k := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[k]
	d.mu.RUnlock()
	return id, ok
}

// LookupIRI is Lookup over a bare IRI string.
func (d *Dictionary) LookupIRI(iri string) (ID, bool) {
	return d.Lookup(rdf.NewIRI(rdf.ExpandIRI(iri)))
}

// Decode returns the term for the ID. It returns an error for IDs that were
// never assigned.
func (d *Dictionary) Decode(id ID) (rdf.Term, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 1 || int(id) > len(d.terms) {
		return rdf.Term{}, fmt.Errorf("dict: ID %d out of range [1,%d]", id, len(d.terms))
	}
	return d.terms[id-1], nil
}

// MustDecode is Decode panicking on unknown IDs; for internal use where IDs
// are known to be valid.
func (d *Dictionary) MustDecode(id ID) rdf.Term {
	t, err := d.Decode(id)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of distinct terms in the dictionary.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// AvgValueLen returns the average length, in bytes, of the lexical forms of
// the terms whose IDs are given. It is the statistic behind the paper's
// "average size of a subject, property, respectively object" used in the view
// space occupancy estimation. Returns def when ids is empty.
func (d *Dictionary) AvgValueLen(ids []ID, def float64) float64 {
	if len(ids) == 0 {
		return def
	}
	var total int
	for _, id := range ids {
		t, err := d.Decode(id)
		if err != nil {
			continue
		}
		total += len(t.Value)
	}
	return float64(total) / float64(len(ids))
}

// SortedIDs returns all assigned IDs in increasing order. Mostly useful for
// deterministic iteration in tests and statistics.
func (d *Dictionary) SortedIDs() []ID {
	out := make([]ID, d.Len())
	for i := range out {
		out[i] = ID(i + 1)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Terms returns the terms in ID order (Terms()[i] has ID i+1) — the
// serialization form used by the persistence layer. The returned slice must
// not be modified, and concurrent encoders may append past its length.
func (d *Dictionary) Terms() []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms
}

// FromTerms rebuilds a dictionary from a Terms() slice, preserving IDs.
func FromTerms(terms []rdf.Term) *Dictionary {
	d := New()
	for _, t := range terms {
		d.Encode(t)
	}
	return d
}
