package dict

import (
	"fmt"
	"testing"
	"testing/quick"

	"rdfviews/internal/rdf"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	terms := []rdf.Term{
		rdf.NewIRI("http://ex/a"),
		rdf.NewLiteral("a"),
		rdf.NewBlank("a"),
		rdf.NewIRI("http://ex/b"),
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
		if ids[i] < 1 {
			t.Fatalf("ID %d < 1", ids[i])
		}
	}
	// Same term encodes to same ID.
	for i, tm := range terms {
		if got := d.Encode(tm); got != ids[i] {
			t.Errorf("re-encode %v: %d != %d", tm, got, ids[i])
		}
	}
	// Distinct terms get distinct IDs.
	seen := map[ID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %d", id)
		}
		seen[id] = true
	}
	for i, id := range ids {
		back, err := d.Decode(id)
		if err != nil {
			t.Fatal(err)
		}
		if back != terms[i] {
			t.Errorf("Decode(%d) = %v, want %v", id, back, terms[i])
		}
	}
	if d.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", d.Len(), len(terms))
	}
}

func TestDecodeErrors(t *testing.T) {
	d := New()
	d.Encode(rdf.NewIRI("x"))
	for _, id := range []ID{0, -1, 2, 99} {
		if _, err := d.Decode(id); err == nil {
			t.Errorf("Decode(%d) should fail", id)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDecode on bad ID should panic")
		}
	}()
	d.MustDecode(42)
}

func TestLookup(t *testing.T) {
	d := New()
	id := d.EncodeIRI("rdf:type")
	got, ok := d.LookupIRI("rdf:type")
	if !ok || got != id {
		t.Errorf("LookupIRI(rdf:type) = %d,%v want %d,true", got, ok, id)
	}
	// Expanded and short forms are the same entry.
	got2, ok2 := d.Lookup(rdf.NewIRI(rdf.RDFType))
	if !ok2 || got2 != id {
		t.Errorf("expanded lookup = %d,%v", got2, ok2)
	}
	if _, ok := d.LookupIRI("absent"); ok {
		t.Error("LookupIRI(absent) should miss")
	}
}

func TestAvgValueLen(t *testing.T) {
	d := New()
	a := d.Encode(rdf.NewIRI("ab"))   // len 2
	b := d.Encode(rdf.NewIRI("abcd")) // len 4
	if got := d.AvgValueLen([]ID{a, b}, 9); got != 3 {
		t.Errorf("AvgValueLen = %v, want 3", got)
	}
	if got := d.AvgValueLen(nil, 9); got != 9 {
		t.Errorf("AvgValueLen(empty) = %v, want default 9", got)
	}
	// Unknown IDs are skipped but still divide; just assert no panic.
	_ = d.AvgValueLen([]ID{a, 999}, 9)
}

func TestSortedIDs(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		d.Encode(rdf.NewIRI(fmt.Sprintf("t%d", i)))
	}
	ids := d.SortedIDs()
	if len(ids) != 5 {
		t.Fatalf("len = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("not sorted: %v", ids)
		}
	}
}

func TestEncodeInjectiveProperty(t *testing.T) {
	d := New()
	f := func(vals []string, kinds []uint8) bool {
		type enc struct {
			term rdf.Term
			id   ID
		}
		var encs []enc
		for i, v := range vals {
			k := rdf.TermKind(0)
			if i < len(kinds) {
				k = rdf.TermKind(kinds[i] % 3)
			}
			tm := rdf.Term{Kind: k, Value: v}
			encs = append(encs, enc{tm, d.Encode(tm)})
		}
		for i := range encs {
			for j := range encs {
				if (encs[i].term == encs[j].term) != (encs[i].id == encs[j].id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
