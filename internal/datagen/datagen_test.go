package datagen

import (
	"testing"

	"rdfviews/internal/rdf"
	"rdfviews/internal/reason"
	"rdfviews/internal/store"
)

func TestGenerateSchemaBartonScale(t *testing.T) {
	s := GenerateSchema(Config{})
	if s.Len() != 106 {
		t.Errorf("schema statements = %d, want 106", s.Len())
	}
	// Every class/property index must stay within the configured counts.
	if got := len(s.Classes()); got == 0 || got > 39 {
		t.Errorf("classes = %d, want (0,39]", got)
	}
	if got := len(s.Properties()); got == 0 || got > 61 {
		t.Errorf("properties = %d, want (0,61]", got)
	}
	// The hierarchy must have depth: the closure must be strictly larger.
	if c := s.Closure(); c.Len() <= s.Len() {
		t.Errorf("closure added nothing: %d <= %d", c.Len(), s.Len())
	}
}

func TestGenerateDataset(t *testing.T) {
	st, schema := Generate(Config{Triples: 3000, Seed: 7})
	if st.Len() != 3000 {
		t.Fatalf("triples = %d", st.Len())
	}
	if schema.Len() != 106 {
		t.Fatalf("schema = %d statements", schema.Len())
	}
	typeID, ok := st.Dict().LookupIRI(rdf.RDFType)
	if !ok {
		t.Fatal("rdf:type missing from dictionary")
	}
	typeCount := st.Count(store.Pattern{store.Wildcard, typeID, store.Wildcard})
	frac := float64(typeCount) / float64(st.Len())
	if frac < 0.10 || frac > 0.35 {
		t.Errorf("type-triple fraction = %v, want ≈0.20", frac)
	}
	// Zipf skew: the most frequent property should dominate the median one.
	maxCount, nonZero := 0, 0
	for i := 0; i < 61; i++ {
		id, ok := st.Dict().LookupIRI(PropName(i))
		if !ok {
			continue
		}
		c := st.Count(store.Pattern{store.Wildcard, id, store.Wildcard})
		if c > 0 {
			nonZero++
		}
		if c > maxCount {
			maxCount = c
		}
	}
	if nonZero < 30 {
		t.Errorf("only %d properties used", nonZero)
	}
	if maxCount < st.Len()/61 {
		t.Errorf("no skew: max property count %d", maxCount)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{Triples: 500, Seed: 42})
	b, _ := Generate(Config{Triples: 500, Seed: 42})
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	at, bt := a.Triples(), b.Triples()
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
}

func TestGeneratedSchemaSupportsReasoning(t *testing.T) {
	st, sch := Generate(Config{Triples: 1000, Seed: 3})
	schema := reason.NewSchema(sch, st.Dict())
	sat := reason.Saturate(st, schema)
	if sat.Len() <= st.Len() {
		t.Errorf("saturation added no implicit triples: %d -> %d", st.Len(), sat.Len())
	}
	bound := reason.EntailedTripleBound(st, schema)
	if sat.Len()-st.Len() > bound {
		t.Errorf("implicit triples %d exceed O(|D|·|S|) bound %d", sat.Len()-st.Len(), bound)
	}
}
