// Package datagen synthesizes a "Barton-like" dataset: a library-catalog
// RDF graph with an RDF Schema of the same scale as the Barton RDFS used in
// the paper's experiments (39 classes, 61 properties, 106 RDFS statements —
// Section 6.5), skewed property usage, and configurable size.
//
// The real Barton dataset (an MIT library-catalog dump of ~50M triples) is
// not redistributable and far exceeds a laptop-scale reproduction; this
// generator preserves the properties the experiments depend on: the schema
// scale, a class/property hierarchy for reasoning to traverse, Zipf-like
// property frequencies, and enough join structure for satisfiable workloads.
package datagen

import (
	"fmt"
	"math/rand"

	"rdfviews/internal/dict"
	"rdfviews/internal/rdf"
	"rdfviews/internal/store"
)

// Config sizes the generated dataset. Zero values select the Barton-schema
// defaults.
type Config struct {
	// Triples is the number of data triples to generate (default 50_000).
	Triples int
	// Classes is the number of classes (default 39, the Barton RDFS).
	Classes int
	// Properties is the number of properties (default 61).
	Properties int
	// SchemaStatements is the total number of RDFS statements (default 106).
	SchemaStatements int
	// Resources is the number of distinct subjects (default Triples/8).
	Resources int
	// Literals is the size of the literal pool (default Resources/4).
	Literals int
	Seed     int64
}

func (c Config) withDefaults() Config {
	if c.Triples <= 0 {
		c.Triples = 50000
	}
	if c.Classes <= 0 {
		c.Classes = 39
	}
	if c.Properties <= 0 {
		c.Properties = 61
	}
	if c.SchemaStatements <= 0 {
		c.SchemaStatements = 106
	}
	if c.Resources <= 0 {
		c.Resources = c.Triples/8 + 1
	}
	if c.Literals <= 0 {
		c.Literals = c.Resources/4 + 1
	}
	return c
}

// ClassName returns the i-th class IRI.
func ClassName(i int) string { return fmt.Sprintf("bartonlike:Class%d", i) }

// PropName returns the i-th property IRI.
func PropName(i int) string { return fmt.Sprintf("bartonlike:prop%d", i) }

// ResourceName returns the i-th resource IRI.
func ResourceName(i int) string { return fmt.Sprintf("bartonlike:res%d", i) }

// GenerateSchema builds the RDFS: a class forest (subClassOf), a property
// forest (subPropertyOf), and domain/range statements, totaling exactly
// cfg.SchemaStatements statements.
func GenerateSchema(cfg Config) *rdf.Schema {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	s := rdf.NewSchema()
	budget := cfg.SchemaStatements

	// Subclass forest: every class except roots points to a parent with a
	// smaller index. Roughly 1/3 of the budget.
	nSub := minInt(budget/3, cfg.Classes-1)
	for i := 1; i <= nSub; i++ {
		parent := rng.Intn(i)
		s.AddSubClass(ClassName(i), ClassName(parent))
	}
	budget -= nSub

	// Subproperty forest: roughly 1/4 of the budget.
	nSubP := minInt(budget/3, cfg.Properties-1)
	for i := 1; i <= nSubP; i++ {
		parent := rng.Intn(i)
		s.AddSubProperty(PropName(i), PropName(parent))
	}
	budget -= nSubP

	// Domain and range statements for distinct properties until the budget
	// is consumed.
	for i := 0; budget > 0; i++ {
		p := PropName(i % cfg.Properties)
		if i%2 == 0 {
			s.AddDomain(p, ClassName(rng.Intn(cfg.Classes)))
		} else {
			s.AddRange(p, ClassName(rng.Intn(cfg.Classes)))
		}
		if got := s.Len(); got >= cfg.SchemaStatements {
			break
		}
		budget = cfg.SchemaStatements - s.Len()
	}
	return s
}

// Generate builds the dataset and its schema into a fresh store. Property
// usage follows a Zipf-like rank distribution (rank r has weight 1/(r+1)),
// ~20% of triples are rdf:type assertions, and ~15% of objects are literals,
// approximating the profile of library-catalog data.
func Generate(cfg Config) (*store.Store, *rdf.Schema) {
	cfg = cfg.withDefaults()
	schema := GenerateSchema(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := store.New()
	d := st.Dict()

	typeID := d.EncodeIRI(rdf.RDFType)
	classIDs := make([]dict.ID, cfg.Classes)
	for i := range classIDs {
		classIDs[i] = d.EncodeIRI(ClassName(i))
	}
	propIDs := make([]dict.ID, cfg.Properties)
	for i := range propIDs {
		propIDs[i] = d.EncodeIRI(PropName(i))
	}
	resIDs := make([]dict.ID, cfg.Resources)
	for i := range resIDs {
		resIDs[i] = d.EncodeIRI(ResourceName(i))
	}
	litIDs := make([]dict.ID, cfg.Literals)
	for i := range litIDs {
		litIDs[i] = d.Encode(rdf.NewLiteral(fmt.Sprintf("value %d", i)))
	}

	// Zipf-like cumulative weights over property ranks.
	cum := make([]float64, cfg.Properties)
	total := 0.0
	for i := range cum {
		total += 1.0 / float64(i+2)
		cum[i] = total
	}
	pickProp := func() dict.ID {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return propIDs[lo]
	}
	// Resources are Zipf-ish too: low-index resources are hubs.
	pickRes := func() dict.ID {
		if rng.Intn(4) == 0 {
			return resIDs[rng.Intn(minInt(64, len(resIDs)))]
		}
		return resIDs[rng.Intn(len(resIDs))]
	}

	for st.Len() < cfg.Triples {
		sub := pickRes()
		switch {
		case rng.Float64() < 0.20: // type assertion
			st.Add(store.Triple{sub, typeID, classIDs[rng.Intn(len(classIDs))]})
		case rng.Float64() < 0.15: // literal-valued property
			st.Add(store.Triple{sub, pickProp(), litIDs[rng.Intn(len(litIDs))]})
		default: // resource-valued property
			st.Add(store.Triple{sub, pickProp(), pickRes()})
		}
	}
	return st, schema
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
