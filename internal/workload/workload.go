// Package workload implements the two query generators of Section 6 ("Data
// and queries"): a free-standing generator producing workloads of
// controllable size, shape and commonality, and a dataset-driven generator
// producing queries guaranteed to be satisfiable on a given store.
//
// The shapes are the ones evaluated in Figures 4 and 6: star queries (clique
// query graphs, the hard case for the search), chains (the average case),
// cycles, random graphs in sparse and dense variants, and mixed workloads.
package workload

import (
	"fmt"
	"math/rand"

	"rdfviews/internal/cq"
	"rdfviews/internal/dict"
	"rdfviews/internal/rdf"
	"rdfviews/internal/store"
)

// rdfTypeIRI is the expanded rdf:type IRI, looked up when abstracting
// dataset triples into query atoms.
const rdfTypeIRI = rdf.RDFType

// Shape selects the query graph shape.
type Shape int

// The workload shapes of Section 6.4.
const (
	Star Shape = iota
	Chain
	Cycle
	RandomSparse
	RandomDense
	Mixed
)

func (s Shape) String() string {
	switch s {
	case Star:
		return "star"
	case Chain:
		return "chain"
	case Cycle:
		return "cycle"
	case RandomSparse:
		return "random-sparse"
	case RandomDense:
		return "random-dense"
	case Mixed:
		return "mixed"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Commonality controls how much structure queries share. High-commonality
// workloads derive queries from a small pool of seed patterns, giving the
// search many view fusion opportunities; low-commonality queries are
// independent.
type Commonality int

// The two commonality levels of Figures 4 and 6.
const (
	Low Commonality = iota
	High
)

func (c Commonality) String() string {
	if c == High {
		return "high"
	}
	return "low"
}

// Spec describes a workload to generate.
type Spec struct {
	Queries       int
	AtomsPerQuery int
	Shape         Shape
	Commonality   Commonality
	// Properties and Constants bound the vocabulary; zero picks defaults
	// scaled to the workload (more atoms → more properties).
	Properties int
	Constants  int
	// PropVocab and ConstVocab, when non-empty, supply the IRIs the
	// generator draws from (e.g. the properties of a generated dataset, so
	// that workload statistics are non-trivial). Otherwise synthetic names
	// wp<i>/wc<i> are used.
	PropVocab  []string
	ConstVocab []string
	Seed       int64
}

func (s Spec) withDefaults() Spec {
	if len(s.PropVocab) > 0 {
		s.Properties = len(s.PropVocab)
	}
	if len(s.ConstVocab) > 0 {
		s.Constants = len(s.ConstVocab)
	}
	if s.Properties <= 0 {
		s.Properties = 8 + s.AtomsPerQuery
	}
	if s.Constants <= 0 {
		s.Constants = 12 + 2*s.AtomsPerQuery
	}
	if s.AtomsPerQuery <= 0 {
		s.AtomsPerQuery = 5
	}
	if s.Queries <= 0 {
		s.Queries = 1
	}
	return s
}

// Generator produces workloads against a dictionary.
type Generator struct {
	dict *dict.Dictionary
	rng  *rand.Rand

	propVocab  []string
	constVocab []string
	nextVar    int
}

// NewGenerator returns a generator encoding constants into d.
func NewGenerator(d *dict.Dictionary, seed int64) *Generator {
	return &Generator{dict: d, rng: rand.New(rand.NewSource(seed))}
}

func (g *Generator) freshVar() cq.Term {
	g.nextVar++
	return cq.Var(g.nextVar)
}

func (g *Generator) prop(i int) cq.Term {
	if len(g.propVocab) > 0 {
		return cq.Const(g.dict.EncodeIRI(g.propVocab[i%len(g.propVocab)]))
	}
	return cq.Const(g.dict.EncodeIRI(fmt.Sprintf("wp%d", i)))
}

func (g *Generator) konst(i int) cq.Term {
	if len(g.constVocab) > 0 {
		return cq.Const(g.dict.EncodeIRI(g.constVocab[i%len(g.constVocab)]))
	}
	return cq.Const(g.dict.EncodeIRI(fmt.Sprintf("wc%d", i)))
}

// Generate produces the workload described by the spec. All queries are
// connected, contain at least one constant (so the stopvar condition applies
// meaningfully), and use disjoint variables.
func Generate(d *dict.Dictionary, spec Spec) []*cq.Query {
	spec = spec.withDefaults()
	g := NewGenerator(d, spec.Seed)
	g.propVocab, g.constVocab = spec.PropVocab, spec.ConstVocab
	out := make([]*cq.Query, 0, spec.Queries)

	// High commonality: a pool of ~Queries/3 seed skeletons; each query is a
	// perturbation of a seed (constants mostly shared, occasional swap).
	var seeds []*skeleton
	if spec.Commonality == High {
		n := spec.Queries/3 + 1
		for i := 0; i < n; i++ {
			seeds = append(seeds, g.skeletonFor(spec, i))
		}
	}
	for qi := 0; qi < spec.Queries; qi++ {
		var sk *skeleton
		if spec.Commonality == High {
			sk = seeds[g.rng.Intn(len(seeds))]
		} else {
			sk = g.skeletonFor(spec, qi)
		}
		out = append(out, g.instantiate(sk, spec))
	}
	return out
}

// skeleton is a query shape: per-atom property index and object spec.
type skeleton struct {
	shape Shape
	atoms int
	props []int
	objs  []int // >= 0: constant index; -1: fresh variable object
}

func (g *Generator) skeletonFor(spec Spec, idx int) *skeleton {
	shape := spec.Shape
	if shape == Mixed {
		shape = []Shape{Star, Chain, Cycle, RandomSparse, RandomDense}[idx%5]
	}
	sk := &skeleton{shape: shape, atoms: spec.AtomsPerQuery}
	for i := 0; i < sk.atoms; i++ {
		sk.props = append(sk.props, g.rng.Intn(spec.Properties))
		if g.rng.Intn(3) == 0 { // ~1/3 of object positions carry constants
			sk.objs = append(sk.objs, g.rng.Intn(spec.Constants))
		} else {
			sk.objs = append(sk.objs, -1)
		}
	}
	// Guarantee at least one constant.
	if allVars(sk.objs) {
		sk.objs[g.rng.Intn(len(sk.objs))] = g.rng.Intn(spec.Constants)
	}
	return sk
}

func allVars(objs []int) bool {
	for _, o := range objs {
		if o >= 0 {
			return false
		}
	}
	return true
}

// instantiate builds a concrete query from a skeleton with fresh variables.
func (g *Generator) instantiate(sk *skeleton, spec Spec) *cq.Query {
	n := sk.atoms
	atoms := make([]cq.Atom, 0, n)
	var vars []cq.Term

	obj := func(i int) cq.Term {
		if sk.objs[i] >= 0 {
			return g.konst(sk.objs[i])
		}
		v := g.freshVar()
		vars = append(vars, v)
		return v
	}

	switch sk.shape {
	case Star:
		center := g.freshVar()
		vars = append(vars, center)
		for i := 0; i < n; i++ {
			atoms = append(atoms, cq.Atom{center, g.prop(sk.props[i]), obj(i)})
		}
	case Chain, Cycle:
		cur := g.freshVar()
		vars = append(vars, cur)
		first := cur
		for i := 0; i < n; i++ {
			var next cq.Term
			switch {
			case sk.shape == Cycle && i == n-1:
				next = first
			case sk.objs[i] >= 0 && i < n-1:
				// A constant object would break the chain; attach it as the
				// property-selected object and continue from a fresh subject
				// joined on cur. Keep the chain through a variable instead.
				next = g.freshVar()
				vars = append(vars, next)
			default:
				next = obj(i)
				if next.IsConst() {
					next = g.freshVar()
					vars = append(vars, next)
				}
			}
			atoms = append(atoms, cq.Atom{cur, g.prop(sk.props[i]), next})
			cur = next
		}
		// Sprinkle the skeleton's constants as extra selection atoms replaced
		// into property positions: chains carry constants in p, matching the
		// paper's query generator.
	case RandomSparse, RandomDense:
		v0 := g.freshVar()
		vars = append(vars, v0)
		for i := 0; i < n; i++ {
			s := vars[g.rng.Intn(len(vars))]
			o := obj(i)
			atoms = append(atoms, cq.Atom{s, g.prop(sk.props[i]), o})
			if sk.shape == RandomDense && o.IsVar() && len(vars) > 2 && i < n-1 {
				// Dense: immediately reuse o with another existing var.
				s2 := vars[g.rng.Intn(len(vars))]
				if s2 != o {
					atoms = append(atoms, cq.Atom{s2, g.prop(sk.props[(i+1)%n]), o})
					i++
				}
			}
		}
		atoms = atoms[:min(len(atoms), n)]
	}
	// Head: the first variable plus ~half of the others.
	head := []cq.Term{vars[0]}
	for _, v := range vars[1:] {
		if g.rng.Intn(2) == 0 {
			head = append(head, v)
		}
	}
	q := &cq.Query{Head: head, Atoms: atoms}
	if err := q.Validate(); err != nil || !q.IsConnected() {
		// Regenerate with a fresh skeleton on the rare invalid draw.
		return g.instantiate(g.skeletonFor(Spec{
			AtomsPerQuery: sk.atoms, Properties: max(spec.Properties, 1),
			Constants: max(spec.Constants, 1), Shape: sk.shape,
		}.withDefaults(), g.rng.Int()), spec)
	}
	return q
}

// GenerateSatisfiable produces spec.Queries queries with non-empty answers
// on the store: each query is abstracted from a connected set of concrete
// triples sampled from the data (the paper's second generator, used to
// obtain "interesting workloads on the Barton dataset").
func GenerateSatisfiable(st *store.Store, spec Spec) ([]*cq.Query, error) {
	spec = spec.withDefaults()
	if st.Len() == 0 {
		return nil, fmt.Errorf("workload: empty store")
	}
	g := NewGenerator(st.Dict(), spec.Seed)
	triples := st.Triples()
	out := make([]*cq.Query, 0, spec.Queries)

	// High commonality: reuse seed triples across queries.
	var seedPool []store.Triple
	if spec.Commonality == High {
		for i := 0; i < spec.Queries/3+1; i++ {
			seedPool = append(seedPool, triples[g.rng.Intn(len(triples))])
		}
	}
	for qi := 0; qi < spec.Queries; qi++ {
		var seed store.Triple
		if spec.Commonality == High {
			seed = seedPool[g.rng.Intn(len(seedPool))]
		} else {
			seed = triples[g.rng.Intn(len(triples))]
		}
		q, err := g.satisfiableQuery(st, seed, spec.AtomsPerQuery)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// satisfiableQuery grows a connected triple set from the seed by random
// walks, then abstracts subjects/objects into variables.
func (g *Generator) satisfiableQuery(st *store.Store, seed store.Triple, atoms int) (*cq.Query, error) {
	chosen := []store.Triple{seed}
	nodes := []dict.ID{seed[store.S], seed[store.O]}
	for len(chosen) < atoms {
		// Expand from a random known node.
		n := nodes[g.rng.Intn(len(nodes))]
		var cands []store.Triple
		st.Scan(store.Pattern{n, store.Wildcard, store.Wildcard}, func(t store.Triple) bool {
			cands = append(cands, t)
			return len(cands) < 32
		})
		st.Scan(store.Pattern{store.Wildcard, store.Wildcard, n}, func(t store.Triple) bool {
			cands = append(cands, t)
			return len(cands) < 64
		})
		if len(cands) == 0 {
			break
		}
		t := cands[g.rng.Intn(len(cands))]
		dup := false
		for _, c := range chosen {
			if c == t {
				dup = true
				break
			}
		}
		if dup {
			// Try a few times before accepting a shorter query.
			if g.rng.Intn(4) == 0 {
				break
			}
			continue
		}
		chosen = append(chosen, t)
		nodes = append(nodes, t[store.S], t[store.O])
	}
	// Abstract: each distinct subject/object ID becomes a variable with
	// probability; properties stay constant (the typical RDF query profile),
	// and so do rdf:type objects — a variable in class position reformulates
	// into one union term per schema class (rule 5), which blows up the
	// workload far beyond the ~20× growth the paper's Table 3 reports.
	typeID, _ := g.dict.LookupIRI(rdfTypeIRI)
	varOf := make(map[dict.ID]cq.Term)
	var varOrder []cq.Term
	term := func(id dict.ID, forceVar, forceConst bool) cq.Term {
		if v, ok := varOf[id]; ok {
			return v
		}
		if forceConst {
			return cq.Const(id)
		}
		if forceVar || g.rng.Intn(3) > 0 { // 2/3 of nodes become variables
			v := g.freshVar()
			varOf[id] = v
			varOrder = append(varOrder, v)
			return v
		}
		return cq.Const(id)
	}
	var qAtoms []cq.Atom
	for i, t := range chosen {
		s := term(t[store.S], i == 0, false)
		o := term(t[store.O], false, t[store.P] == typeID)
		qAtoms = append(qAtoms, cq.Atom{s, cq.Const(t[store.P]), o})
	}
	var head []cq.Term
	for _, v := range varOrder {
		if len(head) == 0 || g.rng.Intn(2) == 0 {
			head = append(head, v)
		}
	}
	q := (&cq.Query{Head: head, Atoms: qAtoms}).Minimize()
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid query: %w", err)
	}
	if !q.IsConnected() {
		q = q.SplitIndependent()[0]
	}
	return q, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
