package workload_test

// HTTP serving-tier benchmarks, recorded in BENCH_http.json: the per-request
// cost of the network path (HTTP parse + admission + stream encode) over the
// warm plan cache, and the load generator's latency quantiles under closed-
// and open-loop traffic. The library-surface costs these stack on are in
// serve_bench_test.go / BENCH_serve.json.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"rdfviews"
	"rdfviews/internal/server"
	"rdfviews/internal/workload"
)

// httpWorld stands up the serving stack end to end: the reformulation-heavy
// deployment of buildServeWorld behind an internal/server instance on a real
// loopback listener.
func httpWorld(b *testing.B, cfg server.Config) *httptest.Server {
	b.Helper()
	lv := buildServeWorld(b, rdfviews.MaintainOptions{})
	// Warm the plan cache: HTTP benchmarks measure the network path, not
	// first-call compilation.
	for _, q := range serveQueryTexts {
		if _, err := lv.AnswerQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	cfg.Backend = server.BackendFunc(func(ctx context.Context, q string) (server.Stream, error) {
		s, err := lv.AnswerQueryStream(ctx, q)
		if err != nil {
			return nil, err
		}
		return s, nil
	})
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	b.Cleanup(hs.Close)
	return hs
}

// BenchmarkServeHTTPWarm measures one sequential HTTP request over the warm
// cache: the full network round trip against BenchmarkServeWarm's in-process
// call — the delta is what the wire costs.
func BenchmarkServeHTTPWarm(b *testing.B) {
	hs := httpWorld(b, server.Config{})
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := serveQueryTexts[i%len(serveQueryTexts)]
		resp, err := client.Get(hs.URL + "/sparql?query=" + url.QueryEscape(q))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServeHTTPClosedLoop runs the load generator closed-loop at the
// admission capacity and reports admitted latency quantiles and throughput.
func BenchmarkServeHTTPClosedLoop(b *testing.B) {
	benchLoad(b, 1)
}

// BenchmarkServeHTTPOverload2x runs the closed loop at twice the admission
// capacity: the acceptance regime — admitted p50 must stay near the
// uncontended p50 while the excess sheds.
func BenchmarkServeHTTPOverload2x(b *testing.B) {
	benchLoad(b, 2)
}

func benchLoad(b *testing.B, mult int) {
	const slots = 4
	hs := httpWorld(b, server.Config{
		MaxInFlight:  slots,
		MaxQueue:     1,
		QueueTimeout: time.Millisecond,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := workload.RunLoad(workload.LoadConfig{
			URL:         hs.URL,
			Queries:     serveQueryTexts,
			Concurrency: mult * slots,
			Duration:    time.Second,
		})
		if res.OK == 0 || res.Errors > 0 {
			b.Fatalf("load run: %+v", res)
		}
		b.ReportMetric(res.Throughput(), "req/s")
		b.ReportMetric(float64(res.Latency.Quantile(0.5).Microseconds()), "p50-µs")
		b.ReportMetric(float64(res.Latency.Quantile(0.95).Microseconds()), "p95-µs")
		b.ReportMetric(float64(res.Shed)/float64(res.Sent)*100, "shed-%")
	}
}
