package workload

// Concurrent network load generator for the HTTP serving tier
// (internal/server): drives a SPARQL endpoint with open- or closed-loop
// client traffic and reports shed rates and latency quantiles. The harness
// behind BENCH_http.json and the admission-control acceptance test — a
// closed loop at 2x capacity must keep admitted latencies near the
// uncontended baseline because excess demand sheds at the door instead of
// queueing behind execution.

import (
	"context"
	"io"
	"math/bits"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyHist is a lock-free log2-bucketed latency histogram: bucket i holds
// observations with nanosecond durations in [2^(i-1), 2^i). Concurrent
// Observe calls are safe; quantiles are upper bounds (the top of the bucket
// the quantile falls in), which is the right bias for latency reporting.
type LatencyHist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	n := uint64(d.Nanoseconds())
	h.buckets[bits.Len64(n)].Add(1)
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// observed latencies, or 0 with no samples.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(1<<63 - 1)
}

// LoadConfig drives one load run against a serving endpoint.
type LoadConfig struct {
	// URL is the endpoint base, e.g. "http://127.0.0.1:8080" — the generator
	// appends /sparql itself.
	URL string
	// Queries is the query mix; workers round-robin through it.
	Queries []string
	// Concurrency is the number of closed-loop workers (or the client pool
	// size for open loop). Default 8.
	Concurrency int
	// Duration is how long to generate load. Default 2s.
	Duration time.Duration
	// Rate, when positive, switches to open loop: requests are issued at this
	// fixed rate (per second) regardless of completions. Zero means closed
	// loop — each worker issues its next request when the previous returns.
	Rate float64
	// Timeout is the per-request client timeout. Default 10s.
	Timeout time.Duration
}

// LoadResult is one load run's ledger.
type LoadResult struct {
	Sent    int64         // requests issued
	OK      int64         // 200 responses (drained fully)
	Shed    int64         // 429/503 responses (admission control)
	Errors  int64         // transport errors and other statuses
	Elapsed time.Duration // wall-clock of the run
	Latency LatencyHist   // latency of OK responses only
}

// Throughput returns completed (OK) requests per second.
func (r *LoadResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// RunLoad generates load per cfg and blocks until the run completes. Shed
// responses (429/503) count separately from errors — under overload they are
// the admission control working as designed, not failures.
func RunLoad(cfg LoadConfig) *LoadResult {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}
	res := &LoadResult{}
	var qi atomic.Int64
	one := func() {
		i := qi.Add(1) - 1
		q := cfg.Queries[int(i)%len(cfg.Queries)]
		start := time.Now()
		resp, err := client.Get(cfg.URL + "/sparql?query=" + url.QueryEscape(q))
		if err != nil {
			atomic.AddInt64(&res.Errors, 1)
			return
		}
		_, derr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case derr != nil:
			atomic.AddInt64(&res.Errors, 1)
		case resp.StatusCode == http.StatusOK:
			atomic.AddInt64(&res.OK, 1)
			res.Latency.Observe(time.Since(start))
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			atomic.AddInt64(&res.Shed, 1)
		default:
			atomic.AddInt64(&res.Errors, 1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: a ticker dispatches at the configured rate; completions
		// do not gate dispatch (the defining property of open-loop load).
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		var sent atomic.Int64
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	open:
		for {
			select {
			case <-ctx.Done():
				break open
			case <-ticker.C:
				sent.Add(1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					one()
				}()
			}
		}
		wg.Wait()
		res.Sent = sent.Load()
	} else {
		// Closed loop: each worker's next request waits for its previous one.
		sent := make([]int64, cfg.Concurrency)
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ctx.Err() == nil {
					one()
					sent[w]++
				}
			}(w)
		}
		wg.Wait()
		res.Sent = 0
		for _, n := range sent {
			res.Sent += n
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
