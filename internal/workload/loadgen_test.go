package workload

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"rdfviews/internal/server"
)

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// 90 fast samples, 10 slow ones: p50 stays in the fast bucket, p99 lands
	// in the slow one. Quantiles are bucket upper bounds, so compare ranges.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(400 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 1*time.Millisecond || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1-2ms bucket", p50)
	}
	if p99 < 400*time.Millisecond || p99 > 1600*time.Millisecond {
		t.Fatalf("p99 = %v, want ~512ms bucket", p99)
	}
	if p99 <= p50 {
		t.Fatalf("p99 (%v) <= p50 (%v)", p99, p50)
	}
}

// fixedServiceBackend answers every query with one row after a fixed service
// time — a deterministic "server capacity" for load-generator tests.
func fixedServiceBackend(service time.Duration) server.Backend {
	return server.BackendFunc(func(ctx context.Context, q string) (server.Stream, error) {
		select {
		case <-time.After(service):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fixedStream{}, nil
	})
}

type fixedStream struct{}

func (fixedStream) Columns() []string         { return []string{"x"} }
func (fixedStream) Next() ([][]string, error) { return nil, nil }
func (fixedStream) Close()                    {}

func newLoadServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func TestRunLoadClosedLoop(t *testing.T) {
	_, hs := newLoadServer(t, server.Config{Backend: fixedServiceBackend(time.Millisecond)})
	res := RunLoad(LoadConfig{
		URL:         hs.URL,
		Queries:     []string{"q1", "q2"},
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
	})
	if res.OK == 0 || res.Sent != res.OK+res.Shed+res.Errors {
		t.Fatalf("inconsistent ledger: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Latency.Count() != res.OK {
		t.Fatalf("latency samples %d != OK %d", res.Latency.Count(), res.OK)
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	_, hs := newLoadServer(t, server.Config{Backend: fixedServiceBackend(time.Millisecond)})
	res := RunLoad(LoadConfig{
		URL:      hs.URL,
		Queries:  []string{"q"},
		Duration: 300 * time.Millisecond,
		Rate:     200,
	})
	// 200/s for 300ms: around 60 requests, generously bounded for CI noise.
	if res.Sent < 20 || res.Sent > 120 {
		t.Fatalf("open loop sent %d requests, want ~60", res.Sent)
	}
	if res.OK == 0 {
		t.Fatalf("no successes: %+v", res)
	}
}

// TestRunLoadOverloadLatency is the acceptance test for admission control
// under overload: a closed loop at ~2x server capacity must keep *admitted*
// p50 close to the uncontended p50 — excess demand sheds at the door (429/503)
// instead of queueing behind execution. The bound is 3x to leave CI headroom;
// without admission control the queue-behind-execution p50 would be ~10x.
func TestRunLoadOverloadLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load test in -short mode")
	}
	const service = 5 * time.Millisecond
	const slots = 4
	_, hs := newLoadServer(t, server.Config{
		Backend:      fixedServiceBackend(service),
		MaxInFlight:  slots,
		MaxQueue:     1,
		QueueTimeout: time.Millisecond,
	})

	// Baseline: closed loop at exactly capacity — no contention.
	base := RunLoad(LoadConfig{
		URL: hs.URL, Queries: []string{"q"},
		Concurrency: slots, Duration: 700 * time.Millisecond,
	})
	if base.OK == 0 {
		t.Fatalf("baseline run got no successes: %+v", base)
	}
	baseP50 := base.Latency.Quantile(0.5)

	// Overload: 2x capacity.
	over := RunLoad(LoadConfig{
		URL: hs.URL, Queries: []string{"q"},
		Concurrency: 2 * slots, Duration: 700 * time.Millisecond,
	})
	if over.OK == 0 {
		t.Fatalf("overload run got no successes: %+v", over)
	}
	if over.Shed == 0 {
		t.Fatalf("2x capacity shed nothing — admission control inactive: %+v", over)
	}
	overP50 := over.Latency.Quantile(0.5)
	if overP50 > 3*baseP50 {
		t.Fatalf("admitted p50 under 2x load = %v, baseline = %v: admission control failed to bound latency",
			overP50, baseP50)
	}
	t.Logf("baseline p50=%v throughput=%.0f/s; 2x-load p50=%v shed=%d/%d",
		baseP50, base.Throughput(), overP50, over.Shed, over.Sent)
}
