package workload

import (
	"testing"

	"rdfviews/internal/cq"
	"rdfviews/internal/datagen"
	"rdfviews/internal/dict"
	"rdfviews/internal/engine"
	"rdfviews/internal/store"
)

func TestGenerateShapesAndSizes(t *testing.T) {
	d := dict.New()
	for _, shape := range []Shape{Star, Chain, Cycle, RandomSparse, RandomDense, Mixed} {
		qs := Generate(d, Spec{Queries: 6, AtomsPerQuery: 5, Shape: shape, Seed: 3})
		if len(qs) != 6 {
			t.Fatalf("%v: got %d queries", shape, len(qs))
		}
		for i, q := range qs {
			if err := q.Validate(); err != nil {
				t.Fatalf("%v query %d invalid: %v", shape, i, err)
			}
			if !q.IsConnected() {
				t.Errorf("%v query %d has a cartesian product", shape, i)
			}
			if q.ConstCount() == 0 {
				t.Errorf("%v query %d has no constants", shape, i)
			}
			if len(q.Atoms) == 0 || len(q.Atoms) > 7 {
				t.Errorf("%v query %d has %d atoms", shape, i, len(q.Atoms))
			}
		}
	}
}

func TestGenerateStarIsStar(t *testing.T) {
	d := dict.New()
	qs := Generate(d, Spec{Queries: 4, AtomsPerQuery: 6, Shape: Star, Seed: 9})
	for _, q := range qs {
		center := q.Atoms[0][0]
		for _, a := range q.Atoms {
			if a[0] != center {
				t.Fatalf("star query subject differs: %v", q)
			}
		}
	}
}

func TestGenerateChainIsChain(t *testing.T) {
	d := dict.New()
	qs := Generate(d, Spec{Queries: 4, AtomsPerQuery: 5, Shape: Chain, Seed: 10})
	for _, q := range qs {
		for i := 1; i < len(q.Atoms); i++ {
			if q.Atoms[i][0] != q.Atoms[i-1][2] {
				t.Fatalf("chain broken at atom %d: %v", i, q)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, d2 := dict.New(), dict.New()
	a := Generate(d1, Spec{Queries: 5, AtomsPerQuery: 4, Shape: Mixed, Seed: 77})
	b := Generate(d2, Spec{Queries: 5, AtomsPerQuery: 4, Shape: Mixed, Seed: 77})
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("same seed produced different query %d:\n%v\n%v", i, a[i], b[i])
		}
	}
}

func TestGenerateVariablesDisjointAcrossQueries(t *testing.T) {
	d := dict.New()
	qs := Generate(d, Spec{Queries: 8, AtomsPerQuery: 4, Shape: Star, Seed: 5})
	seen := map[cq.Term]int{}
	for qi, q := range qs {
		for _, v := range q.Vars() {
			if prev, ok := seen[v]; ok && prev != qi {
				t.Fatalf("variable %v shared between queries %d and %d", v, prev, qi)
			}
			seen[v] = qi
		}
	}
}

func TestHighCommonalitySharesStructure(t *testing.T) {
	d := dict.New()
	high := Generate(d, Spec{Queries: 12, AtomsPerQuery: 4, Shape: Star, Commonality: High, Seed: 4})
	// With 12 queries over ~5 seeds, some pair must be isomorphic.
	found := false
	for i := 0; i < len(high) && !found; i++ {
		for j := i + 1; j < len(high); j++ {
			if cq.BodyIsomorphism(high[i], high[j]) != nil {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("high-commonality workload has no isomorphic query pair")
	}
}

func TestGenerateSatisfiable(t *testing.T) {
	st, _ := datagen.Generate(datagen.Config{Triples: 2000, Seed: 1})
	qs, err := GenerateSatisfiable(st, Spec{Queries: 6, AtomsPerQuery: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 6 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		r, err := engine.EvalQuery(st, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() == 0 {
			t.Errorf("query %d is not satisfiable: %v", i, q.Format(st.Dict()))
		}
	}
}

func TestGenerateSatisfiableEmptyStore(t *testing.T) {
	if _, err := GenerateSatisfiable(store.New(), Spec{Queries: 1}); err == nil {
		t.Error("empty store should fail")
	}
}

func TestShapeAndCommonalityStrings(t *testing.T) {
	for _, s := range []Shape{Star, Chain, Cycle, RandomSparse, RandomDense, Mixed} {
		if s.String() == "" {
			t.Error("empty shape name")
		}
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Error("commonality names")
	}
}
