package workload_test

// Serving-path benchmarks for the plan cache (rdfviews/serve.go), recorded
// in BENCH_serve.json. The deployment is reformulation-heavy on purpose — a
// subclass chain makes every type query expand to dozens of union members —
// so the numbers isolate what the cache amortizes: reformulate + plan
// compile per call (cold / cache-off) versus bind + execute (warm).
//
// This file lives in workload_test (not package workload) so it can drive
// the public serving surface end to end without an import cycle.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rdfviews"
)

// serveClasses is the subclass-chain depth: reformulating a query over the
// root class yields serveClasses union members.
const serveClasses = 48

// buildServeWorld loads a database with a deep class hierarchy and a few
// thousand triples, recommends views for a small workload under
// pre-reformulation, and returns the maintained deployment.
func buildServeWorld(b *testing.B, opts rdfviews.MaintainOptions) *rdfviews.LiveViews {
	b.Helper()
	db := rdfviews.NewDatabase()
	var schema strings.Builder
	for i := 1; i < serveClasses; i++ {
		fmt.Fprintf(&schema, "c%d rdfs:subClassOf c%d .\n", i, i-1)
	}
	if _, err := db.LoadSchemaString(schema.String()); err != nil {
		b.Fatal(err)
	}
	var data strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&data, "e%d rdf:type c%d .\n", i, i%serveClasses)
		fmt.Fprintf(&data, "e%d hasPainted w%d .\n", i, i%97)
		fmt.Fprintf(&data, "e%d livesIn city%d .\n", i, i%31)
		if i%4 == 0 {
			fmt.Fprintf(&data, "e%d isParentOf e%d .\n", i, (i+1)%2000)
		}
	}
	if _, err := db.LoadGraphString(data.String()); err != nil {
		b.Fatal(err)
	}
	w, err := db.ParseWorkload(`q(X, Z) :- t(X, isParentOf, Y), t(Y, hasPainted, Z)`)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := db.Recommend(w, rdfviews.Options{
		Timeout:   5 * time.Second,
		Reasoning: rdfviews.ReasoningPre,
	})
	if err != nil {
		b.Fatal(err)
	}
	lv, err := rec.MaintainWithOptions(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { lv.Close() })
	return lv
}

// serveQueryTexts is the ad-hoc point-lookup mix of a serving tier: entity
// scans, parameterized point joins and a multi-atom entity star, rotating
// constants so the lifted skeletons are shared across texts. Results are
// small by design — point serving is exactly the regime where per-call parse
// + plan cost drowns execution, i.e. what the cache amortizes. Reformulated
// type probes are benchmarked separately (BenchmarkServeReformulated*): their
// warm cost is executing every union member, so caching buys less there.
var serveQueryTexts = []string{
	`q(Y) :- t(e7, hasPainted, Y)`,
	`q(Y) :- t(e1293, hasPainted, Y)`,
	`q(C) :- t(e9, livesIn, C)`,
	`q(Z) :- t(e44, isParentOf, Y), t(Y, hasPainted, Z)`,
	`q(Z) :- t(e16, isParentOf, Y), t(Y, hasPainted, Z)`,
	`q(W, C, Z) :- t(e44, hasPainted, W), t(e44, livesIn, C), t(e44, isParentOf, Y), t(Y, hasPainted, Z)`,
}

// serveReformulatedText is a type-membership probe: under pre-reformulation
// the c40 atom expands to 8 union members, so the cold path pays reformulate
// + compile per member and the warm path still executes every member.
const serveReformulatedText = `q(X) :- t(X, rdf:type, c40), t(X, hasPainted, w42)`

// BenchmarkServeCold measures the full per-call serving cost with the plan
// cache disabled: parse + reformulate + plan + execute, every time. This is
// the pre-cache serving path and the benchmark oracle.
func BenchmarkServeCold(b *testing.B) {
	lv := buildServeWorld(b, rdfviews.MaintainOptions{PlanCache: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lv.AnswerQuery(serveQueryTexts[i%len(serveQueryTexts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeWarm measures the hit path: parse + cache hit + bind +
// execute. The compile work of BenchmarkServeCold is amortized away.
func BenchmarkServeWarm(b *testing.B) {
	lv := buildServeWorld(b, rdfviews.MaintainOptions{})
	for _, q := range serveQueryTexts {
		if _, err := lv.AnswerQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lv.AnswerQuery(serveQueryTexts[i%len(serveQueryTexts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePrepared measures the prepared-query path: the parse is also
// amortized, and each iteration rebinds the lifted parameter — the cheapest
// way to serve a point-lookup family.
func BenchmarkServePrepared(b *testing.B) {
	lv := buildServeWorld(b, rdfviews.MaintainOptions{})
	p, err := lv.Prepare(`q(Z) :- t(e42, isParentOf, Y), t(Y, hasPainted, Z)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.AnswerBound(fmt.Sprintf("e%d", (i*4)%2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeReformulatedCold measures the cache-off cost of a
// reformulation-heavy probe: reformulate + compile + execute all 8 union
// members, every call.
func BenchmarkServeReformulatedCold(b *testing.B) {
	lv := buildServeWorld(b, rdfviews.MaintainOptions{PlanCache: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lv.AnswerQuery(serveReformulatedText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeReformulatedWarm is the hit path of the same probe: the
// reformulation and per-member compile are amortized, execution of the 8
// members is not — the honest bound on what plan caching buys a union query.
func BenchmarkServeReformulatedWarm(b *testing.B) {
	lv := buildServeWorld(b, rdfviews.MaintainOptions{})
	if _, err := lv.AnswerQuery(serveReformulatedText); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lv.AnswerQuery(serveReformulatedText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeWarmParallel measures hit-path throughput under concurrent
// load: GOMAXPROCS goroutines hammering the shared cache.
func BenchmarkServeWarmParallel(b *testing.B) {
	lv := buildServeWorld(b, rdfviews.MaintainOptions{})
	for _, q := range serveQueryTexts {
		if _, err := lv.AnswerQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := lv.AnswerQuery(serveQueryTexts[i%len(serveQueryTexts)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkServeMixedChurn measures the serving path under a concurrent
// update stream: readers stay on the hit path (churn is kept under the
// drift threshold by deleting what it inserts) while a writer applies
// inserts and deletes through asynchronous maintenance.
func BenchmarkServeMixedChurn(b *testing.B) {
	lv := buildServeWorld(b, rdfviews.MaintainOptions{QueueDepth: 1024, BatchMax: 64})
	for _, q := range serveQueryTexts {
		if _, err := lv.AnswerQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var updates atomic.Int64
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			line := fmt.Sprintf("churn%d hasPainted cw%d .", i%256, i%13)
			if _, err := lv.Insert(line); err != nil {
				return
			}
			if _, err := lv.Delete(line); err != nil {
				return
			}
			updates.Add(2)
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := lv.AnswerQuery(serveQueryTexts[i%len(serveQueryTexts)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone
	b.ReportMetric(float64(updates.Load()), "updates")
}
