package rdfviews_test

import (
	"fmt"
	"sort"
	"time"

	"rdfviews"
)

// The paper's running example: recommend views for the painter query and
// answer it from the materialized views alone.
func ExampleDatabase_Recommend() {
	db := rdfviews.NewDatabase()
	db.MustLoadGraphString(`
u1 hasPainted starryNight .
u1 isParentOf u2 .
u2 hasPainted irises .
u2 hasPainted sunflowers .
`)
	w := db.MustParseWorkload(
		`q(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y), t(Y, hasPainted, Z)`)
	rec, err := db.Recommend(w, rdfviews.Options{Timeout: 2 * time.Second})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mat, err := rec.Materialize()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rows, _ := mat.Answer(0)
	sort.Slice(rows, func(i, j int) bool { return rows[i][1] < rows[j][1] })
	for _, r := range rows {
		fmt.Println(r[0], "painted starryNight; child painted", r[1])
	}
	// Output:
	// u1 painted starryNight; child painted irises
	// u1 painted starryNight; child painted sunflowers
}

// Implicit triples: the schema makes every painting a picture, so the query
// answers include resources never explicitly typed as pictures — computed
// with post-reformulation, without saturating the database.
func ExampleReasoningPost() {
	db := rdfviews.NewDatabase()
	db.MustLoadGraphString(`
m1 rdf:type painting .
m2 rdf:type picture .
`)
	db.MustLoadSchemaString(`painting rdfs:subClassOf picture .`)
	w := db.MustParseWorkload(`q(X) :- t(X, rdf:type, picture)`)
	rec, err := db.Recommend(w, rdfviews.Options{
		Reasoning: rdfviews.ReasoningPost,
		Timeout:   time.Second,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mat, _ := rec.Materialize()
	rows, _ := mat.Answer(0)
	names := make([]string, 0, len(rows))
	for _, r := range rows {
		names = append(names, r[0])
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output:
	// [m1 m2]
}
